//! End-to-end GRAM tests: client ↔ gatekeeper ↔ jobmanager ↔ site
//! scheduler ↔ GASS, including the exactly-once and crash-recovery
//! behaviours the paper's §3.2 and §4.2 claim.

use gass::{FileData, GassServer, GassUrl};
use gram::proto::{GramReply, GramRequest, JmMsg, JobContact};
use gram::{Gatekeeper, RslSpec, SubmitSession};
use gridsim::prelude::*;
use gridsim::{AnyMsg, Config, World};
use gsi::{CertificateAuthority, GridMap, ProxyCredential};
use site::policy::Fifo;
use site::Lrm;
use std::collections::BTreeMap;

/// A scripted GRAM client: submits `jobs` with retransmission, commits on
/// reply, records every callback, optionally asks for a JobManager restart
/// at a scripted time (crash-recovery tests).
struct TestClient {
    gatekeeper: Addr,
    gass_url: GassUrl,
    credential: ProxyCredential,
    jobs: Vec<RslSpec>,
    sessions: BTreeMap<u64, SubmitSession>,
    /// seq -> callbacks seen.
    callbacks: BTreeMap<u64, Vec<String>>,
    /// contact -> seq.
    contacts: BTreeMap<u64, u64>,
    retransmit: Option<Duration>,
    /// (when, contact_seq) — send RestartJobManager for that job.
    restart_at: Option<Duration>,
    cancel_at: Option<(Duration, u64)>,
    jobmanagers: BTreeMap<u64, Addr>,
}

impl TestClient {
    fn new(gatekeeper: Addr, gass_url: GassUrl, credential: ProxyCredential) -> TestClient {
        TestClient {
            gatekeeper,
            gass_url,
            credential,
            jobs: Vec::new(),
            sessions: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            contacts: BTreeMap::new(),
            retransmit: Some(Duration::from_secs(10)),
            restart_at: None,
            cancel_at: None,
            jobmanagers: BTreeMap::new(),
        }
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let node = ctx.node();
        let flat: Vec<(u64, Vec<String>)> = self
            .callbacks
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        ctx.store().put(node, "callbacks", &flat);
    }
}

const RETRY_BASE: u64 = 1_000_000;
const RESTART_TAG: u64 = 9_000_000;
const CANCEL_TAG: u64 = 9_000_001;

impl Component for TestClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, rsl) in self.jobs.drain(..).enumerate() {
            let seq = i as u64;
            let mut session = SubmitSession::new(
                seq,
                rsl.to_string(),
                self.credential.clone(),
                ctx.self_addr(),
                self.gass_url.clone(),
            );
            ctx.send(self.gatekeeper, session.request());
            if let Some(rt) = self.retransmit {
                ctx.set_timer(rt, RETRY_BASE + seq);
            }
            self.sessions.insert(seq, session);
        }
        if let Some(at) = self.restart_at {
            ctx.set_timer(at, RESTART_TAG);
        }
        if let Some((at, _)) = self.cancel_at {
            ctx.set_timer(at, CANCEL_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if (RETRY_BASE..RESTART_TAG).contains(&tag) {
            let seq = tag - RETRY_BASE;
            if let Some(s) = self.sessions.get_mut(&seq) {
                if s.awaiting_reply() && s.attempts < 50 {
                    ctx.send(self.gatekeeper, s.request());
                    if let Some(rt) = self.retransmit {
                        ctx.set_timer(rt, tag);
                    }
                }
            }
        } else if tag == RESTART_TAG {
            // Ask the gatekeeper to restart the JobManager for job 0.
            if let Some((&contact, &seq)) = self.contacts.iter().next() {
                let _ = seq;
                ctx.send(
                    self.gatekeeper,
                    GramRequest::RestartJobManager {
                        contact: JobContact(contact),
                        credential: self.credential.clone(),
                        callback: ctx.self_addr(),
                        gass: self.gass_url.clone(),
                        stdout_have: 0,
                        capability: None,
                    },
                );
            }
        } else if tag == CANCEL_TAG {
            if let Some((_, seq)) = self.cancel_at {
                if let Some(&jm) = self.jobmanagers.get(&seq) {
                    ctx.send(jm, JmMsg::Cancel);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            match reply {
                GramReply::Submitted {
                    seq,
                    contact,
                    jobmanager,
                } => {
                    self.contacts.insert(contact.0, *seq);
                    self.jobmanagers.insert(*seq, *jobmanager);
                    if let Some(s) = self.sessions.get_mut(seq) {
                        use gram::client::SubmitAction;
                        if let SubmitAction::SendCommit { jobmanager, .. } = s.on_reply(reply) {
                            ctx.send(jobmanager, JmMsg::Commit);
                        }
                    }
                }
                GramReply::SubmitFailed { seq, error } => {
                    self.callbacks
                        .entry(*seq)
                        .or_default()
                        .push(format!("SubmitFailed:{error}"));
                    self.persist(ctx);
                }
                GramReply::Restarted {
                    contact,
                    jobmanager,
                } => {
                    if let Some(&seq) = self.contacts.get(&contact.0) {
                        self.jobmanagers.insert(seq, *jobmanager);
                        // Re-forward credential and GASS location, as the
                        // GridManager does after reconnecting.
                        ctx.send(
                            *jobmanager,
                            JmMsg::RefreshCredential {
                                credential: self.credential.clone(),
                            },
                        );
                    }
                }
                _ => {}
            }
            return;
        }
        if let Some(JmMsg::Callback {
            contact,
            state,
            exit_ok,
            ..
        }) = msg.downcast_ref::<JmMsg>()
        {
            let seq = self.contacts.get(&contact.0).copied().unwrap_or(u64::MAX);
            self.callbacks
                .entry(seq)
                .or_default()
                .push(format!("{state:?}{}", if *exit_ok { "+" } else { "" }));
            self.persist(ctx);
            if state.is_terminal() {
                ctx.send(from, JmMsg::DoneAck);
            }
        }
    }
}

struct Rig {
    world: World,
    client_node: NodeId,
    gk_node: NodeId,
    client: Addr,
    gatekeeper: Addr,
}

/// Build a standard rig: submit machine (client + GASS server) and an
/// execution site (gatekeeper + LRM on separate nodes).
fn rig(seed: u64, jobs: Vec<RslSpec>, configure: impl FnOnce(&mut TestClient, &mut World)) -> Rig {
    let mut ca = CertificateAuthority::new("/CN=Globus CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(24));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");

    let mut w = World::new(Config::default().seed(seed).with_trace());
    let submit = w.add_node("submit.wisc.edu");
    let interface = w.add_node("gatekeeper.site.edu");
    let cluster = w.add_node("cluster.site.edu");

    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/home/jane/sim.exe", FileData::inline("ELF")),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("pbs", 4, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap.clone(), lrm),
    );
    // Boot hook so the interface machine can be crash-restarted in tests.
    {
        let trust = ca.trust_root();
        let gm = gridmap.clone();
        w.set_boot(interface, move |b| {
            b.add_component(
                "gatekeeper",
                Gatekeeper::new("site", trust.clone(), gm.clone(), lrm)
                    .recover(b.store(), b.node()),
            );
        });
    }

    let gass_url = GassUrl::gass(gass, "");
    let mut client = TestClient::new(gk, gass_url, cred);
    client.jobs = jobs;
    configure(&mut client, &mut w);
    let client_addr = w.add_component(submit, "client", client);
    Rig {
        world: w,
        client_node: submit,
        gk_node: interface,
        client: client_addr,
        gatekeeper: gk,
    }
}

fn job_rsl(gass: &GassUrl, runtime_secs: u64, stdout_size: u64) -> RslSpec {
    let exe = GassUrl::gass(gass.server, "/home/jane/sim.exe");
    let out = GassUrl::gass(gass.server, "/home/jane/out.dat");
    let mut spec = RslSpec::job(&exe.to_string(), Duration::from_secs(runtime_secs));
    if stdout_size > 0 {
        spec = spec.with_stdout(&out.to_string(), stdout_size);
    }
    spec
}

fn callbacks_of(w: &World, node: NodeId, seq: u64) -> Vec<String> {
    let flat: Vec<(u64, Vec<String>)> = w.store().get(node, "callbacks").unwrap_or_default();
    flat.into_iter()
        .find(|(k, _)| *k == seq)
        .map(|(_, v)| v)
        .unwrap_or_default()
}

#[test]
fn figure1_happy_path() {
    // The Figure-1 ladder: submit -> stage-in -> pending -> active ->
    // stage-out -> done, with stdout landing back on the submit machine.
    let placeholder = GassUrl::gass(
        Addr {
            node: NodeId(0),
            comp: CompId(0),
        },
        "",
    );
    let _ = placeholder;
    let r = rig(7, vec![], |client, _| {
        let jobs = vec![job_rsl(&client.gass_url, 600, 4096)];
        client.jobs = jobs;
    });
    let mut w = r.world;
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert_eq!(
        cbs,
        vec!["StageIn", "Pending", "Active", "StageOut", "Done+"],
        "callback ladder mismatch: {cbs:?}"
    );
    // stdout visible on the submit machine's GASS server.
    assert_eq!(
        w.store()
            .get::<u64>(r.client_node, "gass/size/home/jane/out.dat"),
        Some(4096)
    );
    assert_eq!(w.metrics().counter("gram.submits"), 1);
    assert_eq!(w.metrics().counter("site.completed"), 1);
    // The trace captured the whole protocol ladder for the F1 experiment.
    assert!(w.trace().of_kind("gram.submit").count() == 1);
    assert!(w.trace().of_kind("lrm.start").count() == 1);
}

#[test]
fn many_jobs_all_complete() {
    let r = rig(8, vec![], |client, _| {
        let jobs = (0..10)
            .map(|_| job_rsl(&client.gass_url, 1200, 1024))
            .collect();
        client.jobs = jobs;
    });
    let mut w = r.world;
    w.run_until_quiescent();
    for seq in 0..10 {
        let cbs = callbacks_of(&w, r.client_node, seq);
        assert_eq!(
            cbs.last().map(String::as_str),
            Some("Done+"),
            "job {seq}: {cbs:?}"
        );
    }
    // 10 jobs on 4 CPUs: three serial waves.
    assert_eq!(w.metrics().counter("site.completed"), 10);
    assert!(w.now() >= SimTime::ZERO + Duration::from_secs(3 * 1200));
}

#[test]
fn two_phase_is_exactly_once_under_reply_loss() {
    // Drop every gatekeeper->client message for the first 45 s: the client
    // keeps retransmitting; the server must not duplicate the job.
    let r = rig(9, vec![], |client, w| {
        client.jobs = vec![job_rsl(&client.gass_url, 60, 0)];
        let gk_node = NodeId(1);
        let submit = NodeId(0);
        w.network_mut().set_link_loss(gk_node, submit, 1.0);
    });
    let mut w = r.world;
    w.run_until(SimTime::ZERO + Duration::from_secs(45));
    w.network_mut().set_link_loss(r.gk_node, r.client_node, 0.0);
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert_eq!(cbs.last().map(String::as_str), Some("Done+"), "{cbs:?}");
    // Several submits arrived, but only one job ever existed.
    assert!(w.metrics().counter("gram.duplicate_submits") >= 1);
    assert_eq!(w.metrics().counter("gram.submits"), 1);
    assert_eq!(w.metrics().counter("site.completed"), 1);
}

#[test]
fn one_phase_duplicates_under_reply_loss() {
    // Same scenario against a one-phase gatekeeper: every retransmission
    // becomes a fresh job. This is the X1 baseline.
    let mut ca = CertificateAuthority::new("/CN=Globus CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(24));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");
    let mut w = World::new(Config::default().seed(10));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/home/jane/sim.exe", FileData::inline("ELF")),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("pbs", 8, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap, lrm).one_phase(),
    );
    let gass_url = GassUrl::gass(gass, "");
    let mut client = TestClient::new(gk, gass_url.clone(), cred);
    // Site-local executable: no staging, so the duplicated JobManagers all
    // reach the scheduler even while the link back to the client is down.
    client.jobs = vec![RslSpec::job("/site/bin/sim", Duration::from_secs(60))];
    w.network_mut().set_link_loss(interface, submit, 1.0);
    w.add_component(submit, "client", client);
    w.run_until(SimTime::ZERO + Duration::from_secs(45));
    w.network_mut().set_link_loss(interface, submit, 0.0);
    w.run_until_quiescent();
    // ~5 retransmissions in 45 s at a 10 s retry interval -> ~5 jobs ran.
    let ran = w.metrics().counter("site.completed");
    assert!(ran > 1, "expected duplicated execution, saw {ran}");
    assert_eq!(w.metrics().counter("gram.submits"), ran);
}

#[test]
fn exactly_once_when_retransmits_cross_a_gatekeeper_crash() {
    // The hardest exactly-once case: the Submitted reply is lost AND the
    // gatekeeper machine crashes before any retransmission gets through.
    // The recovered gatekeeper must answer retransmissions from its
    // persisted (DN, seq) table — same contact, one job, no loss.
    let r = rig(21, vec![], |client, w| {
        client.jobs = vec![job_rsl(&client.gass_url, 60, 0)];
        w.network_mut().set_link_loss(NodeId(1), NodeId(0), 1.0);
    });
    let mut w = r.world;
    // First submit processed, reply lost; client is retransmitting.
    w.run_until(SimTime::ZERO + Duration::from_secs(12));
    w.crash_node_now(r.gk_node);
    w.run_until(SimTime::ZERO + Duration::from_secs(30));
    w.restart_node_now(r.gk_node);
    // Retransmissions now reach the recovered incarnation, replies still
    // dropped until t=60s.
    w.run_until(SimTime::ZERO + Duration::from_secs(60));
    w.network_mut().set_link_loss(r.gk_node, r.client_node, 0.0);
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert_eq!(cbs.last().map(String::as_str), Some("Done+"), "{cbs:?}");
    assert_eq!(
        w.metrics().counter("gram.submits"),
        1,
        "dedup table lost in crash"
    );
    assert!(w.metrics().counter("gram.duplicate_submits") >= 1);
    assert_eq!(w.metrics().counter("site.completed"), 1);
    let _ = (r.client, r.gatekeeper);
}

#[test]
fn gatekeeper_crash_recovery_resumes_the_job() {
    // Crash the interface machine while the job runs; the cluster keeps
    // computing. After restart, a RestartJobManager request reattaches and
    // the client still sees Done.
    let r = rig(11, vec![], |client, _| {
        client.jobs = vec![job_rsl(&client.gass_url, 1800, 2048)];
        client.restart_at = Some(Duration::from_mins(40));
        client.retransmit = Some(Duration::from_secs(10));
    });
    let mut w = r.world;
    // Let the job get submitted and start.
    w.run_until(SimTime::ZERO + Duration::from_mins(5));
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert!(
        cbs.contains(&"Active".to_string()),
        "job not started yet: {cbs:?}"
    );
    // Interface machine crashes for 30 min (job finishes at t=30min while
    // the gatekeeper is down).
    w.crash_node_now(r.gk_node);
    w.run_until(SimTime::ZERO + Duration::from_mins(35));
    w.restart_node_now(r.gk_node);
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert_eq!(cbs.last().map(String::as_str), Some("Done+"), "{cbs:?}");
    assert_eq!(w.metrics().counter("gram.jm_restarts"), 1);
    // stdout staged despite the crash.
    assert_eq!(
        w.store()
            .get::<u64>(r.client_node, "gass/size/home/jane/out.dat"),
        Some(2048)
    );
    let _ = (r.client, r.gatekeeper);
}

#[test]
fn cancel_removes_job() {
    let r = rig(12, vec![], |client, _| {
        client.jobs = vec![job_rsl(&client.gass_url, 7200, 0)];
        client.cancel_at = Some((Duration::from_mins(10), 0));
    });
    let mut w = r.world;
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, r.client_node, 0);
    assert_eq!(cbs.last().map(String::as_str), Some("Removed"), "{cbs:?}");
    assert_eq!(w.metrics().counter("site.completed"), 0);
    assert_eq!(w.metrics().counter("site.cancelled"), 1);
}

#[test]
fn unauthorized_user_rejected() {
    // A user with a valid certificate but no gridmap entry must be turned
    // away with AuthorizationFailed.
    let mut ca = CertificateAuthority::new("/CN=Globus CA", 1);
    let mallory = ca.issue_identity("/CN=mallory", Duration::from_days(30));
    let cred = mallory.new_proxy(SimTime::ZERO, Duration::from_hours(24));
    let gridmap = GridMap::new(); // empty: nobody authorized
    let mut w = World::new(Config::default().seed(13));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    let gass = w.add_component(submit, "gass", GassServer::new(ca.trust_root()));
    let lrm = w.add_component(cluster, "lrm", Lrm::new("pbs", 4, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap, lrm),
    );
    let gass_url = GassUrl::gass(gass, "");
    let mut client = TestClient::new(gk, gass_url.clone(), cred);
    client.jobs = vec![RslSpec::job("/bin/true", Duration::from_secs(1))];
    client.retransmit = None;
    let cn = submit;
    w.add_component(submit, "client", client);
    w.run_until_quiescent();
    let cbs = callbacks_of(&w, cn, 0);
    assert_eq!(cbs.len(), 1);
    assert!(
        cbs[0].contains("no gridmap entry for /CN=mallory"),
        "{cbs:?}"
    );
    assert_eq!(w.metrics().counter("gram.rejected"), 1);
}

#[test]
fn capability_grants_access_without_gridmap_entry() {
    // §3.2 work-in-progress: "authorization decisions to be made on the
    // basis of capabilities supplied with the request". A visitor with no
    // gridmap entry runs a job by presenting a site-signed capability;
    // without one (or with a forged one) they are refused.
    use gridsim::time::SimTime;
    use gsi::CapabilityIssuer;

    let mut ca = CertificateAuthority::new("/CN=Globus CA", 1);
    let visitor = ca.issue_identity("/CN=visiting scientist", Duration::from_days(30));
    let cred = visitor.new_proxy(SimTime::ZERO, Duration::from_hours(24));
    let issuer = CapabilityIssuer::new("site", 9);
    let rogue = CapabilityIssuer::new("site", 10);

    let run = |capability: Option<gsi::Capability>| -> (u64, String) {
        let mut w = World::new(Config::default().seed(50));
        let submit = w.add_node("submit");
        let interface = w.add_node("gk");
        let cluster = w.add_node("cluster");
        let gass = w.add_component(
            submit,
            "gass",
            GassServer::new(ca.trust_root()).preload("/exe", FileData::inline("ELF")),
        );
        let lrm = w.add_component(cluster, "lrm", Lrm::new("site", 4, Fifo));
        // Empty gridmap: only capabilities can authorize.
        let gk = w.add_component(
            interface,
            "gatekeeper",
            Gatekeeper::new("site", ca.trust_root(), GridMap::new(), lrm)
                .with_capability_key(issuer.public()),
        );
        struct CapClient {
            gatekeeper: Addr,
            credential: ProxyCredential,
            gass: GassUrl,
            capability: Option<gsi::Capability>,
        }
        impl Component for CapClient {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let mut s = SubmitSession::new(
                    0,
                    RslSpec::job("/site/task", Duration::from_mins(5)).to_string(),
                    self.credential.clone(),
                    ctx.self_addr(),
                    self.gass.clone(),
                );
                if let Some(cap) = self.capability.clone() {
                    s = s.with_capability(cap);
                }
                ctx.send(self.gatekeeper, s.request());
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                let node = ctx.node();
                if let Some(GramReply::Submitted { jobmanager, .. }) =
                    msg.downcast_ref::<GramReply>()
                {
                    ctx.send(*jobmanager, JmMsg::Commit);
                } else if let Some(GramReply::SubmitFailed { error, .. }) =
                    msg.downcast_ref::<GramReply>()
                {
                    ctx.store().put(node, "refusal", &error.to_string());
                }
            }
        }
        w.add_component(
            submit,
            "client",
            CapClient {
                gatekeeper: gk,
                credential: cred.clone(),
                gass: GassUrl::gass(gass, ""),
                capability,
            },
        );
        w.run_until_quiescent();
        let refusal: String = w.store().get(submit, "refusal").unwrap_or_default();
        (w.metrics().counter("site.completed"), refusal)
    };

    // No capability: refused.
    let (done, refusal) = run(None);
    assert_eq!(done, 0);
    assert!(refusal.contains("no gridmap entry"), "{refusal}");
    // Valid capability: the job runs under the granted local account.
    let cap = issuer.grant(
        "/CN=visiting scientist",
        "guest07",
        SimTime::ZERO + Duration::from_days(2),
    );
    let (done, _) = run(Some(cap));
    assert_eq!(done, 1, "capability holder should run");
    // Forged capability (wrong authority): refused.
    let forged = rogue.grant(
        "/CN=visiting scientist",
        "root",
        SimTime::ZERO + Duration::from_days(2),
    );
    let (done, refusal) = run(Some(forged));
    assert_eq!(done, 0);
    assert!(refusal.contains("no gridmap entry"), "{refusal}");
}
