//! Property-based tests for the batch scheduling policies.

use gridsim::time::{Duration, SimTime};
use proptest::prelude::*;
use site::policy::{EasyBackfill, FairShare, Fifo, QueueView, RunningView, SchedPolicy};

fn arb_queue() -> impl Strategy<Value = Vec<QueueView>> {
    prop::collection::vec((1u32..8, 1u64..10_000, 0u64..5, 0u64..1000), 0..30).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (cpus, est, owner, at))| QueueView {
                local_id: i as u64,
                cpus,
                estimate: Duration::from_secs(est),
                owner: format!("user{owner}"),
                submitted: SimTime(at),
            })
            .collect()
    })
}

fn arb_running() -> impl Strategy<Value = Vec<RunningView>> {
    prop::collection::vec((1u32..8, 1u64..10_000), 0..10).prop_map(|raw| {
        raw.into_iter()
            .map(|(cpus, end)| RunningView {
                cpus,
                expected_end: SimTime(end * 1_000_000),
            })
            .collect()
    })
}

/// Selections are valid: ids exist in the queue, are distinct, and the
/// total CPUs selected never exceed what is free.
fn check_selection(picks: &[u64], queue: &[QueueView], free: u32) -> Result<(), TestCaseError> {
    let mut seen = std::collections::HashSet::new();
    let mut used = 0u32;
    for id in picks {
        prop_assert!(seen.insert(*id), "duplicate pick {id}");
        let job = queue
            .iter()
            .find(|j| j.local_id == *id)
            .ok_or_else(|| TestCaseError::fail(format!("unknown pick {id}")))?;
        used += job.cpus;
    }
    prop_assert!(used <= free, "selected {used} cpus with only {free} free");
    Ok(())
}

proptest! {
    #[test]
    fn fifo_selections_are_valid_and_prefix_ordered(
        queue in arb_queue(),
        running in arb_running(),
        free in 0u32..32,
    ) {
        let mut p = Fifo;
        let picks = p.select(SimTime::ZERO, &queue, &running, free);
        check_selection(&picks, &queue, free)?;
        // FIFO picks a prefix of the queue, in order.
        let expected: Vec<u64> = queue.iter().map(|j| j.local_id).take(picks.len()).collect();
        prop_assert_eq!(picks, expected);
    }

    #[test]
    fn backfill_selections_are_valid_and_include_head_when_it_fits(
        queue in arb_queue(),
        running in arb_running(),
        free in 0u32..32,
    ) {
        let mut p = EasyBackfill;
        let picks = p.select(SimTime::ZERO, &queue, &running, free);
        check_selection(&picks, &queue, free)?;
        if let Some(head) = queue.first() {
            if head.cpus <= free {
                prop_assert!(
                    picks.contains(&head.local_id),
                    "head fits ({} cpus of {free}) but was skipped",
                    head.cpus
                );
            }
        }
        // Backfill must never pick a *later* job that the head could not
        // coexist with at the head's own reservation unless it fits now —
        // weaker invariant covered by check_selection; the head-priority
        // unit tests pin the precise EASY semantics.
    }

    #[test]
    fn fair_share_selections_are_valid_and_order_by_usage(
        queue in arb_queue(),
        running in arb_running(),
        free in 0u32..32,
        heavy_user in 0u64..5,
    ) {
        let mut p = FairShare::default();
        p.charge(&format!("user{heavy_user}"), Duration::from_hours(10_000));
        let picks = p.select(SimTime::ZERO, &queue, &running, free);
        check_selection(&picks, &queue, free)?;
        // If a zero-usage user's 1-cpu job exists and free >= 1, the heavy
        // user's job is never the sole pick while a light job was skipped.
        if free >= 1 {
            let light_exists = queue
                .iter()
                .any(|j| j.cpus <= free && j.owner != format!("user{heavy_user}"));
            if light_exists && !picks.is_empty() {
                let first = queue.iter().find(|j| j.local_id == picks[0]).unwrap();
                // The first pick is a least-usage owner (all others are 0).
                prop_assert_ne!(
                    &first.owner,
                    &format!("user{heavy_user}"),
                    "heavy user scheduled first over light users"
                );
            }
        }
    }

    /// Determinism: the same inputs yield the same selection.
    #[test]
    fn policies_are_deterministic(
        queue in arb_queue(),
        running in arb_running(),
        free in 0u32..32,
    ) {
        let a = EasyBackfill.select(SimTime::ZERO, &queue, &running, free);
        let b = EasyBackfill.select(SimTime::ZERO, &queue, &running, free);
        prop_assert_eq!(a, b);
        let a = Fifo.select(SimTime::ZERO, &queue, &running, free);
        let b = Fifo.select(SimTime::ZERO, &queue, &running, free);
        prop_assert_eq!(a, b);
    }
}
