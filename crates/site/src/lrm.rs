//! The local resource manager component.

use crate::job::{JobSpec, LrmJobState};
use crate::policy::{QueueView, RunningView, SchedPolicy};
use crate::proto::{LrmEvent, LrmReply, LrmRequest, SiteInfo};
use gridsim::prelude::*;
use gridsim::rng::Dist;
use gridsim::AnyMsg;
use std::collections::HashMap;

/// Opportunistic capacity churn: models desktop owners reclaiming their
/// machines in a Condor pool (or maintenance windows on a cluster).
///
/// Every `interval` the number of reclaimed processors is resampled from
/// `reclaimed` (clamped to the site size). If the new value exceeds the
/// processors currently idle, the youngest running jobs are vacated to make
/// up the difference — exactly the revocation that GlideIn checkpointing
/// (paper §5) exists to survive.
#[derive(Clone, Debug)]
pub struct ChurnModel {
    /// Time between owner-activity changes (seconds).
    pub interval: Dist,
    /// Distribution of how many processors are owner-occupied.
    pub reclaimed: Dist,
    /// Diurnal swing: the reclaimed sample is scaled by
    /// `1 + amplitude · sin(2π·t/24h − π/2)`, so owner occupancy peaks in
    /// the working day and bottoms out at night — the classic Condor
    /// desktop-pool availability curve. `0.0` disables it.
    pub diurnal_amplitude: f64,
}

impl ChurnModel {
    /// Steady churn with no diurnal component.
    pub fn steady(interval: Dist, reclaimed: Dist) -> ChurnModel {
        ChurnModel {
            interval,
            reclaimed,
            diurnal_amplitude: 0.0,
        }
    }
}

struct Queued {
    local_id: u64,
    spec: JobSpec,
    submitter: Addr,
    submitted: SimTime,
}

struct Running {
    spec: JobSpec,
    submitter: Addr,
    started: SimTime,
    expected_end: SimTime,
    timer: TimerId,
}

const CHURN_TAG: u64 = u64::MAX;

/// A site batch scheduler: queue, policy, wall limits, optional churn.
pub struct Lrm {
    site: String,
    /// Machine architecture; wrong-arch binaries fail at start.
    arch: String,
    total_cpus: u32,
    reclaimed: u32,
    policy: Box<dyn SchedPolicy>,
    max_wall: Option<Duration>,
    requeue_on_vacate: bool,
    churn: Option<ChurnModel>,
    queue: Vec<Queued>,
    running: HashMap<u64, Running>,
    /// Processors held by `running`, maintained incrementally so busy
    /// accounting stays O(1) with ten thousand concurrent jobs.
    used: u32,
    /// Terminal outcomes kept for late `Status` polls. Bounded: entries are
    /// evicted FIFO past [`TERMINAL_RETAIN`], since a poll for a job that
    /// finished tens of thousands of completions ago no longer has a
    /// JobManager waiting on it — and a campaign would otherwise grow this
    /// map with every job that ever ran here. Values carry an insertion
    /// generation so a re-inserted id is not evicted by its stale entry in
    /// the order queue.
    terminal: HashMap<u64, (LrmJobState, u64)>,
    terminal_order: std::collections::VecDeque<(u64, u64)>,
    terminal_gen: u64,
    next_local: u64,
    last_busy: f64,
    /// Site-scoped metric names, precomputed once (these are recorded on
    /// every start/finish).
    metric_busy: String,
    metric_queue_wait: String,
    metric_cpu_seconds: String,
    metric_queue_depth: String,
    metric_success_rate: String,
    metric_completed: String,
    /// Rolling window of recent terminal outcomes (`true` = completed),
    /// feeding the per-site success-rate gauge in the grid-weather report.
    outcomes: std::collections::VecDeque<bool>,
}

/// Terminal outcomes in the rolling success-rate window.
const OUTCOME_WINDOW: usize = 32;

/// Terminal-state entries retained for late status polls.
const TERMINAL_RETAIN: usize = 16_384;

impl Lrm {
    /// A scheduler for `total_cpus` processors under `policy`.
    pub fn new(site: &str, total_cpus: u32, policy: impl SchedPolicy) -> Lrm {
        Lrm {
            site: site.to_string(),
            arch: "INTEL".to_string(),
            total_cpus,
            reclaimed: 0,
            policy: Box::new(policy),
            max_wall: None,
            requeue_on_vacate: true,
            churn: None,
            queue: Vec::new(),
            running: HashMap::new(),
            used: 0,
            terminal: HashMap::new(),
            terminal_order: std::collections::VecDeque::new(),
            terminal_gen: 0,
            next_local: 0,
            last_busy: 0.0,
            metric_busy: format!("site.{site}.busy"),
            metric_queue_wait: format!("site.{site}.queue_wait"),
            metric_cpu_seconds: format!("site.{site}.cpu_seconds"),
            metric_queue_depth: format!("site.{site}.queue_depth"),
            metric_success_rate: format!("site.{site}.success_rate"),
            metric_completed: format!("site.{site}.completed"),
            outcomes: std::collections::VecDeque::with_capacity(OUTCOME_WINDOW),
        }
    }

    /// Set the machine architecture (default `INTEL`).
    pub fn with_arch(mut self, arch: &str) -> Lrm {
        self.arch = arch.to_string();
        self
    }

    /// Impose a site wall-clock limit (jobs running longer are killed).
    pub fn with_wall_limit(mut self, limit: Duration) -> Lrm {
        self.max_wall = Some(limit);
        self
    }

    /// Enable opportunistic churn.
    pub fn with_churn(mut self, churn: ChurnModel) -> Lrm {
        self.churn = Some(churn);
        self
    }

    /// Vacated jobs are lost (sent a terminal `Vacated` event) instead of
    /// being requeued. Used when the "jobs" are glidein daemons.
    pub fn vacate_is_terminal(mut self) -> Lrm {
        self.requeue_on_vacate = false;
        self
    }

    fn used_cpus(&self) -> u32 {
        debug_assert_eq!(
            self.used,
            self.running.values().map(|r| r.spec.cpus).sum::<u32>(),
            "incremental CPU accounting out of sync"
        );
        self.used
    }

    /// Record a terminal outcome, evicting the oldest entries past the cap.
    fn note_terminal(&mut self, local_id: u64, state: LrmJobState) {
        self.terminal_gen += 1;
        let gen = self.terminal_gen;
        self.terminal.insert(local_id, (state, gen));
        self.terminal_order.push_back((local_id, gen));
        while self.terminal_order.len() > TERMINAL_RETAIN {
            let Some((old_id, old_gen)) = self.terminal_order.pop_front() else {
                break;
            };
            // Only drop the map entry if it is the one this queue slot
            // registered (not a newer re-insertion under the same id).
            if self
                .terminal
                .get(&old_id)
                .is_some_and(|&(_, g)| g == old_gen)
            {
                self.terminal.remove(&old_id);
            }
        }
    }

    fn take_terminal(&mut self, local_id: u64) -> Option<LrmJobState> {
        self.terminal.remove(&local_id).map(|(s, _)| s)
    }

    fn get_terminal(&self, local_id: u64) -> Option<LrmJobState> {
        self.terminal.get(&local_id).map(|&(s, _)| s)
    }

    fn free_cpus(&self) -> u32 {
        self.total_cpus
            .saturating_sub(self.reclaimed)
            .saturating_sub(self.used_cpus())
    }

    fn info(&self) -> SiteInfo {
        SiteInfo {
            total_cpus: self.total_cpus,
            free_cpus: self.free_cpus(),
            queued: self.queue.len() as u32,
            running: self.running.len() as u32,
        }
    }

    fn record_busy(&mut self, ctx: &mut Ctx<'_>) {
        let t = ctx.now();
        let used = self.used_cpus() as f64;
        ctx.metrics().gauge(&self.metric_busy, t, used);
        // A grid-wide busy-CPU series: every site contributes deltas, so
        // the sum is exact across sites (used by the E1 concurrency plot).
        let delta = used - self.last_busy;
        self.last_busy = used;
        if delta != 0.0 {
            ctx.metrics().gauge_delta("grid.busy_cpus", t, delta);
        }
    }

    /// Publish the current queue depth (jobs queued, not running) — one of
    /// the per-site grid-weather series.
    fn record_queue_depth(&mut self, ctx: &mut Ctx<'_>) {
        let t = ctx.now();
        ctx.metrics()
            .gauge(&self.metric_queue_depth, t, self.queue.len() as f64);
    }

    /// Record one terminal outcome in the rolling window and republish the
    /// per-site success-rate gauge.
    fn note_outcome(&mut self, ctx: &mut Ctx<'_>, ok: bool) {
        if self.outcomes.len() == OUTCOME_WINDOW {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(ok);
        let rate = self.outcomes.iter().filter(|&&b| b).count() as f64 / self.outcomes.len() as f64;
        let t = ctx.now();
        ctx.metrics().gauge(&self.metric_success_rate, t, rate);
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let free = self.free_cpus();
            if free == 0 || self.queue.is_empty() {
                break;
            }
            let queue_view: Vec<QueueView> = self
                .queue
                .iter()
                .map(|j| QueueView {
                    local_id: j.local_id,
                    cpus: j.spec.cpus,
                    estimate: j.spec.estimate,
                    owner: j.spec.owner.clone(),
                    submitted: j.submitted,
                })
                .collect();
            // Only backfill-style policies read the running view; skip the
            // O(running) materialisation for the ones that don't.
            let running_view: Vec<RunningView> = if self.policy.needs_running_view() {
                self.running
                    .values()
                    .map(|r| RunningView {
                        cpus: r.spec.cpus,
                        expected_end: r.expected_end,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let picks = self
                .policy
                .select(ctx.now(), &queue_view, &running_view, free);
            if picks.is_empty() {
                break;
            }
            // Extract the picked jobs in pick order with one pass over the
            // queue (ids may repeat or be stale; budget skips stay queued).
            let mut index: HashMap<u64, usize> = HashMap::with_capacity(self.queue.len());
            for (pos, job) in self.queue.iter().enumerate() {
                index.insert(job.local_id, pos);
            }
            let mut slots: Vec<Option<Queued>> = self.queue.drain(..).map(Some).collect();
            let mut started_any = false;
            let mut budget = free;
            for id in picks {
                let Some(&pos) = index.get(&id) else {
                    continue;
                };
                let Some(job) = slots[pos].take_if(|j| j.spec.cpus <= budget) else {
                    continue;
                };
                budget -= job.spec.cpus;
                started_any = true;
                self.start_job(ctx, job);
            }
            self.queue = slots.into_iter().flatten().collect();
            if !started_any {
                break;
            }
        }
    }

    fn start_job(&mut self, ctx: &mut Ctx<'_>, job: Queued) {
        let now = ctx.now();
        let wait = now - job.submitted;
        ctx.metrics().observe_duration("site.queue_wait", wait);
        ctx.metrics()
            .observe_duration(&self.metric_queue_wait, wait);
        // True occupancy: min(actual runtime, wall limit).
        let (span, exceeded) = match self.max_wall {
            Some(limit) if job.spec.runtime > limit => (limit, true),
            _ => (job.spec.runtime, false),
        };
        let timer = ctx.set_timer(span, job.local_id);
        // The *policy-visible* end uses the estimate (clamped the same way).
        let est_span = match self.max_wall {
            Some(limit) => job.spec.estimate.min(limit),
            None => job.spec.estimate,
        };
        ctx.trace_with("lrm.start", || {
            format!(
                "{} job {} ({} cpus)",
                self.site, job.local_id, job.spec.cpus
            )
        });
        ctx.send(
            job.submitter,
            LrmEvent {
                local_id: job.local_id,
                state: LrmJobState::Running,
                at: now,
            },
        );
        self.used += job.spec.cpus;
        self.running.insert(
            job.local_id,
            Running {
                spec: job.spec,
                submitter: job.submitter,
                started: now,
                expected_end: now + est_span,
                timer,
            },
        );
        // Remember whether this run will exceed the wall limit.
        if exceeded {
            self.note_terminal(job.local_id, LrmJobState::WallTimeExceeded);
        }
        self.record_busy(ctx);
    }

    fn finish_job(&mut self, ctx: &mut Ctx<'_>, local_id: u64) {
        let Some(run) = self.running.remove(&local_id) else {
            return;
        };
        self.used -= run.spec.cpus;
        let now = ctx.now();
        // Was this completion actually a wall-limit kill?
        let state = match self.take_terminal(local_id) {
            Some(LrmJobState::WallTimeExceeded) => LrmJobState::WallTimeExceeded,
            _ => LrmJobState::Completed,
        };
        let elapsed = now - run.started;
        self.policy
            .charge(&run.spec.owner, elapsed * u64::from(run.spec.cpus));
        ctx.metrics()
            .incr("site.completed", (state == LrmJobState::Completed) as u64);
        ctx.metrics().incr(
            &self.metric_completed,
            (state == LrmJobState::Completed) as u64,
        );
        ctx.metrics().incr(
            "site.wall_killed",
            (state == LrmJobState::WallTimeExceeded) as u64,
        );
        self.note_outcome(ctx, state == LrmJobState::Completed);
        ctx.metrics().observe(
            &self.metric_cpu_seconds,
            elapsed.as_secs_f64() * f64::from(run.spec.cpus),
        );
        ctx.trace_with("lrm.done", || {
            format!("{} job {local_id} -> {state:?}", self.site)
        });
        self.note_terminal(local_id, state);
        ctx.send(
            run.submitter,
            LrmEvent {
                local_id,
                state,
                at: now,
            },
        );
        self.record_busy(ctx);
        self.schedule(ctx);
        self.record_queue_depth(ctx);
    }

    fn apply_churn(&mut self, ctx: &mut Ctx<'_>) {
        let Some(churn) = self.churn.clone() else {
            return;
        };
        let mut target = ctx.rng().sample(&churn.reclaimed).max(0.0);
        if churn.diurnal_amplitude > 0.0 {
            // Phase: minimum occupancy at midnight, maximum mid-afternoon.
            let day_frac = (ctx.now().as_secs_f64() / 86_400.0).fract();
            let swing = (std::f64::consts::TAU * day_frac - std::f64::consts::FRAC_PI_2).sin();
            target *= 1.0 + churn.diurnal_amplitude * swing;
        }
        self.reclaimed = (target.round().max(0.0) as u32).min(self.total_cpus);
        // Vacate youngest running jobs until used + reclaimed <= total.
        while self.used_cpus() + self.reclaimed > self.total_cpus {
            // Youngest = latest start.
            let Some((&victim, _)) = self.running.iter().max_by_key(|(id, r)| (r.started, **id))
            else {
                break;
            };
            let run = self.running.remove(&victim).expect("victim exists");
            self.used -= run.spec.cpus;
            ctx.cancel_timer(run.timer);
            ctx.metrics().incr("site.vacated", 1);
            ctx.trace_with("lrm.vacate", || format!("{} job {victim}", self.site));
            let now = ctx.now();
            // Partial usage still gets charged.
            self.policy.charge(
                &run.spec.owner,
                (now - run.started) * u64::from(run.spec.cpus),
            );
            self.take_terminal(victim);
            if self.requeue_on_vacate {
                ctx.send(
                    run.submitter,
                    LrmEvent {
                        local_id: victim,
                        state: LrmJobState::Queued,
                        at: now,
                    },
                );
                self.queue.insert(
                    0,
                    Queued {
                        local_id: victim,
                        spec: run.spec,
                        submitter: run.submitter,
                        submitted: now,
                    },
                );
            } else {
                self.note_terminal(victim, LrmJobState::Vacated);
                self.note_outcome(ctx, false);
                ctx.send(
                    run.submitter,
                    LrmEvent {
                        local_id: victim,
                        state: LrmJobState::Vacated,
                        at: now,
                    },
                );
            }
        }
        self.record_busy(ctx);
        let next = ctx.rng().duration(&churn.interval);
        ctx.set_timer(next, CHURN_TAG);
        self.schedule(ctx);
        self.record_queue_depth(ctx);
    }
}

impl Component for Lrm {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(churn) = &self.churn {
            let first = ctx.rng().duration(&churn.interval);
            ctx.set_timer(first, CHURN_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == CHURN_TAG {
            self.apply_churn(ctx);
        } else {
            self.finish_job(ctx, tag);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        let Ok(req) = msg.downcast::<LrmRequest>() else {
            return;
        };
        match *req {
            LrmRequest::Submit { client_job, spec } => {
                let local_id = self.next_local;
                self.next_local += 1;
                ctx.metrics().incr("site.submitted", 1);
                // A binary built for another architecture dies on exec.
                if let Some(arch) = &spec.required_arch {
                    if !arch.eq_ignore_ascii_case(&self.arch) {
                        ctx.metrics().incr("site.arch_mismatch", 1);
                        ctx.trace_with("lrm.exec_failed", || {
                            format!(
                                "{} job {local_id}: binary is {arch}, site is {}",
                                self.site, self.arch
                            )
                        });
                        self.note_terminal(local_id, LrmJobState::Vacated);
                        self.note_outcome(ctx, false);
                        ctx.send(
                            from,
                            LrmReply::Submitted {
                                client_job,
                                local_id,
                            },
                        );
                        ctx.send(
                            from,
                            LrmEvent {
                                local_id,
                                state: LrmJobState::Vacated,
                                at: ctx.now(),
                            },
                        );
                        return;
                    }
                }
                ctx.trace_with("lrm.submit", || {
                    format!(
                        "{} job {local_id} ({} cpus, owner {})",
                        self.site, spec.cpus, spec.owner
                    )
                });
                self.queue.push(Queued {
                    local_id,
                    spec,
                    submitter: from,
                    submitted: ctx.now(),
                });
                ctx.send(
                    from,
                    LrmReply::Submitted {
                        client_job,
                        local_id,
                    },
                );
                self.schedule(ctx);
                self.record_queue_depth(ctx);
            }
            LrmRequest::Cancel { local_id } => {
                let now = ctx.now();
                if let Some(pos) = self.queue.iter().position(|j| j.local_id == local_id) {
                    let job = self.queue.remove(pos);
                    self.note_terminal(local_id, LrmJobState::Removed);
                    ctx.send(
                        job.submitter,
                        LrmEvent {
                            local_id,
                            state: LrmJobState::Removed,
                            at: now,
                        },
                    );
                } else if let Some(run) = self.running.remove(&local_id) {
                    self.used -= run.spec.cpus;
                    ctx.cancel_timer(run.timer);
                    self.note_terminal(local_id, LrmJobState::Removed);
                    ctx.send(
                        run.submitter,
                        LrmEvent {
                            local_id,
                            state: LrmJobState::Removed,
                            at: now,
                        },
                    );
                    self.record_busy(ctx);
                    self.schedule(ctx);
                }
                ctx.metrics().incr("site.cancelled", 1);
                self.record_queue_depth(ctx);
            }
            LrmRequest::Status { local_id } => {
                let state = if self.running.contains_key(&local_id) {
                    Some(LrmJobState::Running)
                } else if self.queue.iter().any(|j| j.local_id == local_id) {
                    Some(LrmJobState::Queued)
                } else {
                    self.get_terminal(local_id)
                };
                ctx.send(from, LrmReply::StatusIs { local_id, state });
            }
            LrmRequest::QueryInfo => {
                ctx.send(from, LrmReply::Info(self.info()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fifo;
    use gridsim::{Config, World};
    use std::collections::BTreeMap;

    /// Test submitter that records every event and reply to stable storage.
    struct Submitter {
        lrm: Addr,
        jobs: Vec<JobSpec>,
        cancel_after: Option<(Duration, u64)>,
        events: BTreeMap<u64, Vec<String>>,
    }

    impl Submitter {
        fn persist(&self, ctx: &mut Ctx<'_>) {
            let node = ctx.node();
            let flat: Vec<(u64, Vec<String>)> =
                self.events.iter().map(|(k, v)| (*k, v.clone())).collect();
            ctx.store().put(node, "events", &flat);
        }
    }

    impl Component for Submitter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, spec) in self.jobs.drain(..).enumerate() {
                ctx.send(
                    self.lrm,
                    LrmRequest::Submit {
                        client_job: i as u64,
                        spec,
                    },
                );
            }
            if let Some((after, _)) = self.cancel_after {
                ctx.set_timer(after, 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            if let Some((_, local)) = self.cancel_after {
                ctx.send(self.lrm, LrmRequest::Cancel { local_id: local });
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(ev) = msg.downcast_ref::<LrmEvent>() {
                self.events.entry(ev.local_id).or_default().push(format!(
                    "{:?}@{}",
                    ev.state,
                    ev.at.micros() / 1_000_000
                ));
                self.persist(ctx);
            } else if let Some(LrmReply::Submitted { local_id, .. }) =
                msg.downcast_ref::<LrmReply>()
            {
                self.events
                    .entry(*local_id)
                    .or_default()
                    .push("Submitted".into());
                self.persist(ctx);
            }
        }
    }

    fn events_of(w: &World, node: gridsim::NodeId, local: u64) -> Vec<String> {
        let flat: Vec<(u64, Vec<String>)> = w.store().get(node, "events").unwrap_or_default();
        flat.into_iter()
            .find(|(k, _)| *k == local)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }

    fn run_world(
        cpus: u32,
        jobs: Vec<JobSpec>,
        build: impl FnOnce(Lrm) -> Lrm,
    ) -> (World, gridsim::NodeId) {
        let mut w = World::new(Config::default().seed(4));
        let site = w.add_node("site");
        let sub = w.add_node("submit");
        let lrm = w.add_component(site, "lrm", build(Lrm::new("pbs", cpus, Fifo)));
        w.add_component(
            sub,
            "submitter",
            Submitter {
                lrm,
                jobs,
                cancel_after: None,
                events: BTreeMap::new(),
            },
        );
        w.run_until_quiescent();
        (w, sub)
    }

    #[test]
    fn jobs_queue_run_and_complete_in_order() {
        let jobs = vec![
            JobSpec::simple(Duration::from_mins(10), "a"),
            JobSpec::simple(Duration::from_mins(10), "a"),
            JobSpec::simple(Duration::from_mins(10), "a"),
        ];
        // 1 CPU: jobs run serially.
        let (w, sub) = run_world(1, jobs, |l| l);
        for id in 0..3 {
            let evs = events_of(&w, sub, id);
            assert!(
                evs.iter().any(|e| e.starts_with("Running")),
                "job {id}: {evs:?}"
            );
            assert!(
                evs.iter().any(|e| e.starts_with("Completed")),
                "job {id}: {evs:?}"
            );
        }
        // Serial: total makespan ~30 min.
        assert!(w.now() >= SimTime::ZERO + Duration::from_mins(30));
        assert_eq!(w.metrics().counter("site.completed"), 3);
        // Queue waits: 0, 10, 20 minutes.
        let h = w.metrics().histogram("site.queue_wait").unwrap();
        assert_eq!(h.count(), 3);
        assert!((h.max() - 1200.0).abs() < 5.0, "max wait {}", h.max());
    }

    #[test]
    fn parallel_when_cpus_available() {
        let jobs = (0..4)
            .map(|_| JobSpec::simple(Duration::from_mins(10), "a"))
            .collect();
        let (w, _) = run_world(4, jobs, |l| l);
        // All four in parallel: makespan ~10 min.
        assert!(w.now() < SimTime::ZERO + Duration::from_mins(11));
    }

    #[test]
    fn wall_limit_kills_long_jobs() {
        let jobs = vec![
            JobSpec::simple(Duration::from_hours(10), "a"),
            JobSpec::simple(Duration::from_mins(5), "a"),
        ];
        let (w, sub) = run_world(2, jobs, |l| l.with_wall_limit(Duration::from_hours(1)));
        let evs = events_of(&w, sub, 0);
        assert!(
            evs.iter().any(|e| e.starts_with("WallTimeExceeded")),
            "{evs:?}"
        );
        let evs1 = events_of(&w, sub, 1);
        assert!(evs1.iter().any(|e| e.starts_with("Completed")), "{evs1:?}");
        // The kill happens at the 1-hour mark, not at 10 hours.
        assert!(w.now() < SimTime::ZERO + Duration::from_hours(2));
    }

    #[test]
    fn cancel_queued_job() {
        let mut w = World::new(Config::default().seed(4));
        let site = w.add_node("site");
        let subn = w.add_node("submit");
        let lrm = w.add_component(site, "lrm", Lrm::new("pbs", 1, Fifo));
        w.add_component(
            subn,
            "submitter",
            Submitter {
                lrm,
                jobs: vec![
                    JobSpec::simple(Duration::from_hours(5), "a"),
                    JobSpec::simple(Duration::from_hours(5), "a"),
                ],
                // Job 1 is still queued at t=1min; cancel it.
                cancel_after: Some((Duration::from_mins(1), 1)),
                events: BTreeMap::new(),
            },
        );
        w.run_until_quiescent();
        let evs = events_of(&w, subn, 1);
        assert!(evs.iter().any(|e| e.starts_with("Removed")), "{evs:?}");
        // Only job 0 completed.
        assert_eq!(w.metrics().counter("site.completed"), 1);
    }

    #[test]
    fn churn_vacates_and_requeues() {
        let mut w = World::new(Config::default().seed(11));
        let site = w.add_node("site");
        let subn = w.add_node("submit");
        // 4 CPUs with aggressive churn reclaiming 0..=4.
        let lrm = w.add_component(
            site,
            "lrm",
            Lrm::new("pool", 4, Fifo).with_churn(ChurnModel::steady(
                Dist::Exp { mean: 600.0 },
                Dist::Uniform { lo: 0.0, hi: 5.0 },
            )),
        );
        w.add_component(
            subn,
            "submitter",
            Submitter {
                lrm,
                jobs: (0..8)
                    .map(|_| JobSpec::simple(Duration::from_hours(1), "a"))
                    .collect(),
                cancel_after: None,
                events: BTreeMap::new(),
            },
        );
        w.run_until(SimTime::ZERO + Duration::from_days(3));
        // Despite vacations, every job eventually completes (requeue).
        assert_eq!(w.metrics().counter("site.completed"), 8);
        assert!(
            w.metrics().counter("site.vacated") > 0,
            "churn never vacated anything"
        );
    }

    #[test]
    fn status_and_info_queries() {
        struct Query {
            lrm: Addr,
        }
        impl Component for Query {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(
                    self.lrm,
                    LrmRequest::Submit {
                        client_job: 0,
                        spec: JobSpec::simple(Duration::from_hours(1), "a"),
                    },
                );
                ctx.set_timer(Duration::from_mins(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                ctx.send(self.lrm, LrmRequest::Status { local_id: 0 });
                ctx.send(self.lrm, LrmRequest::QueryInfo);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                let node = ctx.node();
                if let Some(LrmReply::StatusIs { state, .. }) = msg.downcast_ref::<LrmReply>() {
                    ctx.store().put(node, "status", &format!("{state:?}"));
                } else if let Some(LrmReply::Info(info)) = msg.downcast_ref::<LrmReply>() {
                    ctx.store().put(
                        node,
                        "info",
                        &format!(
                            "total={} free={} queued={} running={}",
                            info.total_cpus, info.free_cpus, info.queued, info.running
                        ),
                    );
                }
            }
        }
        let mut w = World::new(Config::default().seed(4));
        let site = w.add_node("site");
        let subn = w.add_node("submit");
        let lrm = w.add_component(site, "lrm", Lrm::new("pbs", 4, Fifo));
        w.add_component(subn, "q", Query { lrm });
        w.run_until(SimTime::ZERO + Duration::from_mins(5));
        assert_eq!(
            w.store().get::<String>(subn, "status").unwrap(),
            "Some(Running)"
        );
        assert_eq!(
            w.store().get::<String>(subn, "info").unwrap(),
            "total=4 free=3 queued=0 running=1"
        );
    }
}
