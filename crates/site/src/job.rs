//! Job descriptions and states as the local scheduler sees them.

use gridsim::time::Duration;
use serde::{Deserialize, Serialize};

/// What a submitter hands the local resource manager.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Processors requested (the paper's workloads are single-CPU workers;
    /// reconstruction-style jobs may ask for more).
    pub cpus: u32,
    /// True service demand — consumed by the simulation, *never* shown to
    /// the scheduling policy (schedulers only see the estimate).
    pub runtime: Duration,
    /// User-supplied runtime estimate (backfill trusts this).
    pub estimate: Duration,
    /// Owner (the site-local account the gridmap resolved to).
    pub owner: String,
    /// Architecture the executable was built for (`None` = portable).
    /// Submitting a binary to a site with a different architecture fails
    /// at execution time, exactly like a real wrong-arch binary.
    pub required_arch: Option<String>,
}

impl JobSpec {
    /// A single-CPU job whose estimate equals its true runtime.
    pub fn simple(runtime: Duration, owner: &str) -> JobSpec {
        JobSpec {
            cpus: 1,
            runtime,
            estimate: runtime,
            owner: owner.to_string(),
            required_arch: None,
        }
    }

    /// Same, with an explicit (possibly wrong) estimate.
    pub fn with_estimate(mut self, estimate: Duration) -> JobSpec {
        self.estimate = estimate;
        self
    }

    /// Same, with a CPU count.
    pub fn with_cpus(mut self, cpus: u32) -> JobSpec {
        self.cpus = cpus;
        self
    }

    /// Same, demanding an architecture.
    pub fn with_arch(mut self, arch: &str) -> JobSpec {
        self.required_arch = Some(arch.to_string());
        self
    }
}

/// Lifecycle of a job inside the local scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LrmJobState {
    /// Waiting in the queue.
    Queued,
    /// Holding processors.
    Running,
    /// Finished normally.
    Completed,
    /// Killed for exceeding the site wall-clock limit.
    WallTimeExceeded,
    /// Preempted by the churn model (owner reclaimed the machine) and not
    /// requeued.
    Vacated,
    /// Cancelled by the submitter.
    Removed,
}

impl LrmJobState {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            LrmJobState::Completed
                | LrmJobState::WallTimeExceeded
                | LrmJobState::Vacated
                | LrmJobState::Removed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let j = JobSpec::simple(Duration::from_mins(30), "jane")
            .with_estimate(Duration::from_hours(1))
            .with_cpus(4);
        assert_eq!(j.cpus, 4);
        assert_eq!(j.runtime, Duration::from_mins(30));
        assert_eq!(j.estimate, Duration::from_hours(1));
    }

    #[test]
    fn terminal_states() {
        assert!(!LrmJobState::Queued.is_terminal());
        assert!(!LrmJobState::Running.is_terminal());
        assert!(LrmJobState::Completed.is_terminal());
        assert!(LrmJobState::WallTimeExceeded.is_terminal());
        assert!(LrmJobState::Vacated.is_terminal());
        assert!(LrmJobState::Removed.is_terminal());
    }
}
