#![warn(missing_docs)]
//! `site` — site-local resource management systems.
//!
//! Figure 1 of the paper ends at a "Site Job Scheduler (PBS, Condor, LSF,
//! LoadLeveler, NQE, etc.)": the local batch system that actually owns the
//! processors. Condor-G deliberately treats these as black boxes reachable
//! only through GRAM, so what matters for the reproduction is their
//! *observable* behaviour: queueing delay under contention, scheduling
//! policy (who runs next), wall-clock limits, and — for opportunistically
//! shared pools — revocation of running allocations.
//!
//! This crate provides [`Lrm`], a batch-scheduler component parameterized
//! by a [`policy::SchedPolicy`]:
//!
//! * [`policy::Fifo`] — strict arrival order (NQE-style).
//! * [`policy::EasyBackfill`] — FIFO with EASY backfill against the head
//!   reservation, using user-supplied runtime estimates (PBS/Maui-style).
//! * [`policy::FairShare`] — least-recent-usage across owners (LSF-style).
//!
//! plus an optional *churn model* ([`lrm::ChurnModel`]) that revokes busy
//! slots the way a Condor pool reclaims desktops when their owners return —
//! the behaviour that makes GlideIn checkpointing worthwhile.

pub mod job;
pub mod lrm;
pub mod policy;
pub mod proto;

pub use job::{JobSpec, LrmJobState};
pub use lrm::{ChurnModel, Lrm};
pub use proto::{LrmEvent, LrmReply, LrmRequest, SiteInfo};
