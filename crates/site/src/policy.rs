//! Scheduling policies.
//!
//! A policy decides, given the queue and the currently free processors,
//! which queued jobs to start *now*. Policies see the user-supplied
//! estimate, never the true runtime.

use gridsim::time::{Duration, SimTime};

/// A queued job, as the policy sees it.
#[derive(Debug, Clone)]
pub struct QueueView {
    /// LRM id.
    pub local_id: u64,
    /// Processors requested.
    pub cpus: u32,
    /// User estimate of runtime.
    pub estimate: Duration,
    /// Owner account.
    pub owner: String,
    /// When it was submitted.
    pub submitted: SimTime,
}

/// A running job, as the policy sees it (needed for backfill reservations).
#[derive(Debug, Clone)]
pub struct RunningView {
    /// Processors held.
    pub cpus: u32,
    /// When, per the *estimate*, it will release them (clamped by wall
    /// limits). Backfill plans against this.
    pub expected_end: SimTime,
}

/// A batch scheduling policy.
pub trait SchedPolicy: Send + 'static {
    /// Pick queued jobs (by `local_id`) to start now. `free` processors are
    /// available. Jobs are started in the returned order; the caller
    /// guarantees each selected job fits before starting it.
    fn select(
        &mut self,
        now: SimTime,
        queue: &[QueueView],
        running: &[RunningView],
        free: u32,
    ) -> Vec<u64>;

    /// Tell the policy a job by `owner` consumed `cpu_time` (for usage
    /// accounting policies). Default: ignore.
    fn charge(&mut self, _owner: &str, _cpu_time: Duration) {}

    /// Whether `select` reads the `running` view at all. Policies that
    /// ignore it (FIFO, fair share) return `false` so the LRM can skip
    /// materialising a view of every running job on each scheduling pass.
    fn needs_running_view(&self) -> bool {
        true
    }

    /// Human-readable name for traces and site ads.
    fn name(&self) -> &'static str;
}

/// Strict arrival order: the head blocks everyone behind it (NQE-style).
#[derive(Debug, Default)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn select(
        &mut self,
        _now: SimTime,
        queue: &[QueueView],
        _running: &[RunningView],
        mut free: u32,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        for job in queue {
            if job.cpus > free {
                break; // strict: never skip the head
            }
            free -= job.cpus;
            out.push(job.local_id);
        }
        out
    }

    fn needs_running_view(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// EASY backfill: start the head whenever possible; give it a reservation
/// otherwise, and let later jobs jump ahead only if (per their estimates)
/// they cannot delay that reservation (PBS+Maui/LoadLeveler-style).
#[derive(Debug, Default)]
pub struct EasyBackfill;

impl SchedPolicy for EasyBackfill {
    fn select(
        &mut self,
        now: SimTime,
        queue: &[QueueView],
        running: &[RunningView],
        mut free: u32,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        let mut queue: Vec<&QueueView> = queue.iter().collect();
        // Start from the head while it fits.
        while let Some(head) = queue.first() {
            if head.cpus <= free {
                free -= head.cpus;
                out.push(head.local_id);
                queue.remove(0);
            } else {
                break;
            }
        }
        let Some(head) = queue.first() else {
            return out;
        };
        // Compute the head's reservation: the earliest time enough
        // processors free up, assuming running jobs end at their estimates.
        let mut releases: Vec<(SimTime, u32)> =
            running.iter().map(|r| (r.expected_end, r.cpus)).collect();
        releases.sort();
        let mut avail = free;
        let mut reservation = SimTime::MAX;
        let mut reserved_free_at_start = 0; // processors free at reservation start
        for (t, cpus) in &releases {
            avail += cpus;
            if avail >= head.cpus {
                reservation = *t;
                reserved_free_at_start = avail - head.cpus;
                break;
            }
        }
        // Backfill: any later job that fits in `free` now and either ends
        // before the reservation or fits in the leftover processors at it.
        for job in queue.iter().skip(1) {
            if job.cpus > free {
                continue;
            }
            let ends = now + job.estimate;
            let safe = ends <= reservation || job.cpus <= reserved_free_at_start;
            if safe {
                free -= job.cpus;
                if job.cpus <= reserved_free_at_start {
                    reserved_free_at_start -= job.cpus.min(reserved_free_at_start);
                }
                out.push(job.local_id);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "easy-backfill"
    }
}

/// Fair share: among queued jobs, prefer owners with the least accumulated
/// (decayed) usage; FIFO within an owner (LSF-style fairshare).
#[derive(Debug, Default)]
pub struct FairShare {
    usage: std::collections::HashMap<String, f64>,
}

impl FairShare {
    /// Accumulated usage for an owner (seconds of CPU, decayed on charge).
    pub fn usage_of(&self, owner: &str) -> f64 {
        self.usage.get(owner).copied().unwrap_or(0.0)
    }
}

impl SchedPolicy for FairShare {
    fn select(
        &mut self,
        _now: SimTime,
        queue: &[QueueView],
        _running: &[RunningView],
        mut free: u32,
    ) -> Vec<u64> {
        // Sort candidates by (owner usage, arrival) — stable and cheap at
        // the queue sizes the experiments use.
        let mut candidates: Vec<&QueueView> = queue.iter().collect();
        candidates.sort_by(|a, b| {
            let ua = self.usage_of(&a.owner);
            let ub = self.usage_of(&b.owner);
            ua.partial_cmp(&ub)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.submitted.cmp(&b.submitted))
                .then(a.local_id.cmp(&b.local_id))
        });
        let mut out = Vec::new();
        for job in candidates {
            if job.cpus <= free {
                free -= job.cpus;
                out.push(job.local_id);
            }
        }
        out
    }

    fn charge(&mut self, owner: &str, cpu_time: Duration) {
        // Exponential-ish decay applied on write: halve everyone when any
        // usage would exceed a large bound, keeping numbers well-scaled.
        let e = self.usage.entry(owner.to_string()).or_insert(0.0);
        *e += cpu_time.as_secs_f64();
        if *e > 1e9 {
            for v in self.usage.values_mut() {
                *v *= 0.5;
            }
        }
    }

    fn needs_running_view(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "fair-share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, cpus: u32, est_secs: u64, owner: &str, at: u64) -> QueueView {
        QueueView {
            local_id: id,
            cpus,
            estimate: Duration::from_secs(est_secs),
            owner: owner.to_string(),
            submitted: SimTime(at),
        }
    }

    fn r(cpus: u32, end_secs: u64) -> RunningView {
        RunningView {
            cpus,
            expected_end: SimTime::ZERO + Duration::from_secs(end_secs),
        }
    }

    #[test]
    fn fifo_respects_order_and_blocks_at_head() {
        let mut p = Fifo;
        let queue = vec![
            q(1, 4, 10, "a", 0),
            q(2, 1, 10, "a", 1),
            q(3, 1, 10, "a", 2),
        ];
        // Only 2 CPUs free: head needs 4, so *nothing* starts.
        assert!(p.select(SimTime::ZERO, &queue, &[], 2).is_empty());
        // 6 free: all three start in order.
        assert_eq!(p.select(SimTime::ZERO, &queue, &[], 6), vec![1, 2, 3]);
    }

    #[test]
    fn backfill_jumps_short_jobs_without_delaying_head() {
        let mut p = EasyBackfill;
        // 2 CPUs total; both busy until t=100 (est). Head wants 2 CPUs.
        let running = vec![r(1, 100), r(1, 100)];
        let queue = vec![
            q(1, 2, 1000, "a", 0), // head: needs both CPUs at t=100
            q(2, 1, 50, "b", 1), // would finish at t=50 < 100: safe? needs a free CPU *now* — none free.
        ];
        assert!(p.select(SimTime::ZERO, &queue, &running, 0).is_empty());
        // Now one CPU free, one busy until 100; head (2 cpus) reserves t=100.
        let running = vec![r(1, 100)];
        let queue = vec![
            q(1, 2, 1000, "a", 0),
            q(2, 1, 50, "b", 1),  // ends at 50 <= 100: backfills
            q(3, 1, 500, "c", 2), // ends at 500 > 100 and no leftover: blocked
        ];
        assert_eq!(p.select(SimTime::ZERO, &queue, &running, 1), vec![2]);
    }

    #[test]
    fn backfill_starts_head_first_when_possible() {
        let mut p = EasyBackfill;
        let queue = vec![q(1, 1, 10, "a", 0), q(2, 1, 10, "b", 1)];
        assert_eq!(p.select(SimTime::ZERO, &queue, &[], 2), vec![1, 2]);
    }

    #[test]
    fn backfill_uses_leftover_processors_at_reservation() {
        let mut p = EasyBackfill;
        // 4 CPUs: 3 busy until t=100, 1 free. Head wants 2.
        // Reservation at t=100 frees 3+1=4, head takes 2, leftover 2.
        // A long 1-cpu job can still backfill into the leftover.
        let running = vec![r(3, 100)];
        let queue = vec![q(1, 2, 1000, "a", 0), q(2, 1, 100_000, "b", 1)];
        assert_eq!(p.select(SimTime::ZERO, &queue, &running, 1), vec![2]);
    }

    #[test]
    fn fair_share_prefers_light_users() {
        let mut p = FairShare::default();
        p.charge("heavy", Duration::from_hours(100));
        let queue = vec![q(1, 1, 10, "heavy", 0), q(2, 1, 10, "light", 5)];
        // light user's job jumps ahead despite arriving later.
        assert_eq!(p.select(SimTime::ZERO, &queue, &[], 1), vec![2]);
        // With 2 slots both run, light first.
        assert_eq!(p.select(SimTime::ZERO, &queue, &[], 2), vec![2, 1]);
    }

    #[test]
    fn fair_share_fifo_within_owner() {
        let mut p = FairShare::default();
        let queue = vec![q(5, 1, 10, "a", 10), q(3, 1, 10, "a", 1)];
        assert_eq!(p.select(SimTime::ZERO, &queue, &[], 2), vec![3, 5]);
    }

    #[test]
    fn fair_share_decay_keeps_bounded() {
        let mut p = FairShare::default();
        for _ in 0..100 {
            p.charge("x", Duration::from_hours(10_000));
        }
        assert!(p.usage_of("x") <= 2e9);
    }
}
