//! Messages between submitters (GRAM JobManagers, glideins' launchers) and
//! the local resource manager.

use crate::job::{JobSpec, LrmJobState};
use gridsim::time::SimTime;

/// Submitter → LRM.
#[derive(Debug)]
pub enum LrmRequest {
    /// Queue a job. `client_job` is the submitter's correlation id.
    Submit {
        /// Submitter's id for this job.
        client_job: u64,
        /// What to run.
        spec: JobSpec,
    },
    /// Remove a queued or running job.
    Cancel {
        /// LRM-assigned id.
        local_id: u64,
    },
    /// Ask for a job's state.
    Status {
        /// LRM-assigned id.
        local_id: u64,
    },
    /// Ask for site load information (what a GRIS reports to MDS).
    QueryInfo,
}

/// LRM → submitter, in direct response to a request.
#[derive(Debug)]
pub enum LrmReply {
    /// Job accepted into the queue.
    Submitted {
        /// Submitter's correlation id.
        client_job: u64,
        /// The id the LRM will use from now on.
        local_id: u64,
    },
    /// Status answer.
    StatusIs {
        /// LRM id.
        local_id: u64,
        /// Current state (`None` if the id is unknown).
        state: Option<LrmJobState>,
    },
    /// Site load snapshot.
    Info(SiteInfo),
}

/// Unsolicited LRM → submitter notification of a state change.
#[derive(Debug, Clone, PartialEq)]
pub struct LrmEvent {
    /// LRM id.
    pub local_id: u64,
    /// The state just entered.
    pub state: LrmJobState,
    /// When it happened.
    pub at: SimTime,
}

/// Load snapshot used for resource discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteInfo {
    /// Configured processors.
    pub total_cpus: u32,
    /// Currently idle processors (after churn).
    pub free_cpus: u32,
    /// Jobs waiting.
    pub queued: u32,
    /// Jobs holding processors.
    pub running: u32,
}
