//! The Shadow: a running job's home-side agent (Figure 2's "Condor Shadow
//! Process for Job X").
//!
//! One shadow per executing job, living on the submit machine. It drives
//! the claim protocol against the matched startd, serves the job's
//! redirected system calls, records checkpoints, and translates whatever
//! ends the execution (exit, vacate, silence) into a report the schedd can
//! act on. A watchdog turns a startd that stops talking — crashed glidein,
//! partitioned site — into a vacate at the last checkpoint, so jobs never
//! hang on dead machines.

use crate::proto::{
    ActivateClaim, Checkpoint, ClaimReply, JobExited, JobId, RequestClaim, ShadowReport,
    SyscallBatch, SyscallReply, VacateNotice,
};
use crate::startd::ReleaseClaim;
use classads::ClassAd;
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::rc::Rc;

const TAG_CLAIM_TIMEOUT: u64 = 1;
const TAG_WATCHDOG: u64 = 2;

enum Phase {
    Claiming,
    Running,
    Finished,
}

/// The shadow component.
pub struct Shadow {
    schedd: Addr,
    job: JobId,
    global_id: String,
    job_ad: Rc<ClassAd>,
    total_work: Duration,
    done_work: Duration,
    startd: Addr,
    phase: Phase,
    /// Expect some sign of life from the startd this often.
    watchdog: Duration,
    last_heard: SimTime,
    /// Remote-I/O accounting (bytes served back to the job).
    pub io_bytes_served: u64,
}

impl Shadow {
    /// A shadow for `job`, matched to `startd`.
    pub fn new(
        schedd: Addr,
        schedd_name: &str,
        job: JobId,
        job_ad: Rc<ClassAd>,
        done_work: Duration,
        startd: Addr,
    ) -> Shadow {
        let total_work = Duration::from_secs_f64(job_ad.get_real("TotalWork").unwrap_or(1.0));
        Shadow {
            schedd,
            job,
            global_id: format!("{schedd_name}#{job}"),
            job_ad,
            total_work,
            done_work,
            startd,
            phase: Phase::Claiming,
            watchdog: Duration::from_mins(30),
            last_heard: SimTime::ZERO,
            io_bytes_served: 0,
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, report: ShadowReport) {
        self.phase = Phase::Finished;
        ctx.send(self.schedd, report);
        ctx.kill(ctx.self_addr());
    }
}

impl Component for Shadow {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last_heard = ctx.now();
        ctx.send(
            self.startd,
            RequestClaim {
                job_ad: Rc::clone(&self.job_ad),
                job: self.job,
            },
        );
        ctx.set_timer(Duration::from_mins(5), TAG_CLAIM_TIMEOUT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        match tag {
            TAG_CLAIM_TIMEOUT => {
                if matches!(self.phase, Phase::Claiming) {
                    // Startd never answered: stale ad or dead glidein.
                    ctx.metrics().incr("shadow.claim_timeouts", 1);
                    self.finish(ctx, ShadowReport::MatchFailed { job: self.job });
                }
            }
            TAG_WATCHDOG => {
                if matches!(self.phase, Phase::Running) {
                    if ctx.now() - self.last_heard >= self.watchdog {
                        // The machine went silent: treat as vacated at the
                        // last checkpoint we hold.
                        ctx.metrics().incr("shadow.watchdog_vacates", 1);
                        ctx.trace("shadow.lost_machine", format!("{}", self.job));
                        let done_work = self.done_work;
                        self.finish(
                            ctx,
                            ShadowReport::Vacated {
                                job: self.job,
                                done_work,
                            },
                        );
                    } else {
                        ctx.set_timer(self.watchdog, TAG_WATCHDOG);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if from == self.startd {
            self.last_heard = ctx.now();
        }
        if let Some(reply) = msg.downcast_ref::<ClaimReply>() {
            match reply {
                ClaimReply::Accepted => {
                    self.phase = Phase::Running;
                    let io_interval = self
                        .job_ad
                        .get_real("IoIntervalSecs")
                        .map(Duration::from_secs_f64);
                    let io_bytes = self.job_ad.get_int("IoBytes").unwrap_or(0) as u64;
                    ctx.send(
                        self.startd,
                        ActivateClaim {
                            job: self.job,
                            global_id: self.global_id.clone(),
                            total_work: self.total_work,
                            done_work: self.done_work,
                            io_interval,
                            io_bytes,
                        },
                    );
                    ctx.set_timer(self.watchdog, TAG_WATCHDOG);
                }
                ClaimReply::Rejected { reason } => {
                    ctx.trace("shadow.claim_rejected", reason.clone());
                    self.finish(ctx, ShadowReport::MatchFailed { job: self.job });
                }
            }
            return;
        }
        if let Some(batch) = msg.downcast_ref::<SyscallBatch>() {
            // Serve the redirected I/O back to the execution site.
            self.io_bytes_served += batch.bytes;
            ctx.metrics().incr("shadow.io_bytes", batch.bytes);
            ctx.send(from, SyscallReply { seq: batch.seq });
            return;
        }
        if let Some(ckpt) = msg.downcast_ref::<Checkpoint>() {
            if ckpt.job == self.job && ckpt.done_work > self.done_work {
                self.done_work = ckpt.done_work;
            }
            return;
        }
        if let Some(exit) = msg.downcast_ref::<JobExited>() {
            if exit.job == self.job {
                ctx.send(self.startd, ReleaseClaim);
                let (job, ok, cpu_time) = (self.job, exit.ok, exit.cpu_time);
                self.finish(ctx, ShadowReport::Done { job, ok, cpu_time });
            }
            return;
        }
        if let Some(vac) = msg.downcast_ref::<VacateNotice>() {
            if vac.job == self.job {
                let done_work = vac.checkpointed_work.max(self.done_work);
                let job = self.job;
                self.finish(ctx, ShadowReport::Vacated { job, done_work });
            }
        }
    }
}
