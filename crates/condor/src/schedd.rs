//! The Schedd: the persistent job queue.
//!
//! "To protect against local failure, all relevant state for each submitted
//! job is stored persistently in the scheduler's job queue" (paper §4.2).
//! The schedd owns pool jobs end to end: it advertises itself to one *or
//! more* collectors (more than one = Condor flocking, the §7 baseline),
//! hands idle jobs to negotiators, spawns a [`crate::Shadow`] per match,
//! and folds shadow reports back into the queue — including vacated jobs,
//! which return to Idle carrying their checkpointed progress so migration
//! never loses completed work.

use crate::proto::{
    AdKind, Advertise, IdleJobs, JobId, MatchNotify, NegotiationRequest, PoolJobEvent,
    PoolJobState, PoolRemove, PoolSubmit, PoolSubmitted, ShadowReport,
};
use crate::shadow::Shadow;
use classads::ClassAd;
use gridsim::prelude::*;
use gridsim::AnyMsg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::rc::Rc;

const TAG_ADVERTISE: u64 = 1;

struct JobRec {
    /// Shared: negotiation snapshots and shadows hold handles to the same
    /// ad rather than deep copies (ads are immutable once queued).
    ad: Rc<ClassAd>,
    state: PoolJobState,
    done_work: Duration,
    submitter: Addr,
    attempts: u32,
}

/// Serialized form of a queue entry (ClassAds persist as their text form).
#[derive(Serialize, Deserialize)]
struct JobRecDisk {
    id: u64,
    ad: String,
    state: PoolJobState,
    done_work_us: u64,
    submitter: Addr,
    attempts: u32,
}

/// The schedd component.
pub struct Schedd {
    name: String,
    collectors: Vec<Addr>,
    jobs: BTreeMap<JobId, JobRec>,
    next_id: u64,
    advertise_period: Duration,
    /// Jobs vacated more than this many times go on Hold.
    max_attempts: u32,
}

impl Schedd {
    /// A schedd advertising to the given collectors (several = flocking).
    pub fn new(name: &str, collectors: Vec<Addr>) -> Schedd {
        Schedd {
            name: name.to_string(),
            collectors,
            jobs: BTreeMap::new(),
            next_id: 0,
            advertise_period: Duration::from_mins(2),
            max_attempts: 50,
        }
    }

    /// Rebuild a schedd from its persistent queue after a crash. Jobs that
    /// were Running return to Idle (their shadows died with the machine)
    /// but keep their checkpointed progress. Terminal jobs stay on disk as
    /// history and are not reloaded into the live queue.
    pub fn recover(
        name: &str,
        collectors: Vec<Addr>,
        store: &gridsim::store::StableStore,
        node: NodeId,
    ) -> Schedd {
        let mut schedd = Schedd::new(name, collectors);
        let prefix = schedd.job_key_prefix();
        for key in store.keys_with_prefix(node, &prefix) {
            let Some(rec) = store.get::<JobRecDisk>(node, &key) else {
                continue;
            };
            schedd.next_id = schedd.next_id.max(rec.id + 1);
            let state = match rec.state {
                PoolJobState::Running => PoolJobState::Idle,
                s => s,
            };
            if matches!(state, PoolJobState::Completed | PoolJobState::Removed) {
                continue;
            }
            schedd.jobs.insert(
                JobId(rec.id),
                JobRec {
                    ad: Rc::new(rec.ad.parse().expect("persisted ad re-parses")),
                    state,
                    done_work: Duration::from_micros(rec.done_work_us),
                    submitter: rec.submitter,
                    attempts: rec.attempts,
                },
            );
        }
        schedd
    }

    fn job_key_prefix(&self) -> String {
        format!("schedd/{}/job/", self.name)
    }

    /// Persist one job (per-key writes keep persistence O(1) per event —
    /// a whole-queue rewrite would be quadratic over a long campaign).
    fn persist_job(&self, ctx: &mut Ctx<'_>, job: JobId) {
        let Some(r) = self.jobs.get(&job) else { return };
        let disk = JobRecDisk {
            id: job.0,
            ad: r.ad.to_string(),
            state: r.state,
            done_work_us: r.done_work.micros(),
            submitter: r.submitter,
            attempts: r.attempts,
        };
        let key = format!("{}{}", self.job_key_prefix(), job.0);
        let node = ctx.node();
        ctx.store().put(node, &key, &disk);
    }

    /// Drop a terminal job from the live queue (its last persisted record
    /// remains as history).
    fn retire_job(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }

    fn notify(&self, ctx: &mut Ctx<'_>, job: JobId) {
        let rec = &self.jobs[&job];
        ctx.send(
            rec.submitter,
            PoolJobEvent {
                job,
                state: rec.state,
                at: ctx.now(),
            },
        );
    }

    fn advertise(&self, ctx: &mut Ctx<'_>) {
        let idle = self
            .jobs
            .values()
            .filter(|r| r.state == PoolJobState::Idle)
            .count() as i64;
        let running = self
            .jobs
            .values()
            .filter(|r| r.state == PoolJobState::Running)
            .count() as i64;
        let ad = ClassAd::new()
            .with("Name", self.name.as_str())
            .with("IdleJobs", idle)
            .with("RunningJobs", running);
        let me = ctx.self_addr();
        for &collector in &self.collectors {
            ctx.send(
                collector,
                Advertise {
                    kind: AdKind::Submitter,
                    name: self.name.clone(),
                    ad: ad.clone(),
                    ttl: self.advertise_period * 3,
                    contact: me,
                },
            );
        }
    }
}

impl Component for Schedd {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.advertise(ctx);
        ctx.set_timer(self.advertise_period, TAG_ADVERTISE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_ADVERTISE {
            self.advertise(ctx);
            ctx.set_timer(self.advertise_period, TAG_ADVERTISE);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(submit) = msg.downcast_ref::<PoolSubmit>() {
            let job = JobId(self.next_id);
            self.next_id += 1;
            ctx.metrics().incr("schedd.submitted", 1);
            self.jobs.insert(
                job,
                JobRec {
                    ad: Rc::new(submit.ad.clone()),
                    state: PoolJobState::Idle,
                    done_work: Duration::ZERO,
                    submitter: from,
                    attempts: 0,
                },
            );
            self.persist_job(ctx, job);
            ctx.send(
                from,
                PoolSubmitted {
                    client_id: submit.client_id,
                    job,
                },
            );
            self.notify(ctx, job);
            return;
        }
        if let Some(req) = msg.downcast_ref::<NegotiationRequest>() {
            let jobs: Vec<(JobId, Rc<ClassAd>)> = self
                .jobs
                .iter()
                .filter(|(_, r)| r.state == PoolJobState::Idle)
                .map(|(id, r)| (*id, Rc::clone(&r.ad)))
                .collect();
            ctx.send(
                from,
                IdleJobs {
                    cycle: req.cycle,
                    jobs,
                },
            );
            return;
        }
        if let Some(m) = msg.downcast_ref::<MatchNotify>() {
            let name = self.name.clone();
            let me = ctx.self_addr();
            let Some(rec) = self.jobs.get_mut(&m.job) else {
                return;
            };
            if rec.state != PoolJobState::Idle {
                return; // raced with another pool's negotiator (flocking)
            }
            rec.state = PoolJobState::Running;
            rec.attempts += 1;
            let shadow = Shadow::new(
                me,
                &name,
                m.job,
                Rc::clone(&rec.ad),
                rec.done_work,
                m.startd,
            );
            let node = ctx.node();
            ctx.spawn(node, &format!("shadow-{}", m.job), shadow);
            ctx.metrics().incr("schedd.matches", 1);
            self.persist_job(ctx, m.job);
            self.notify(ctx, m.job);
            return;
        }
        if let Some(report) = msg.downcast_ref::<ShadowReport>() {
            match report {
                ShadowReport::Done { job, ok, cpu_time } => {
                    if let Some(rec) = self.jobs.get_mut(job) {
                        rec.state = if *ok {
                            PoolJobState::Completed
                        } else {
                            PoolJobState::Held
                        };
                        rec.done_work = rec.done_work.max(*cpu_time);
                        ctx.metrics().incr("schedd.completed", 1);
                        ctx.metrics()
                            .observe("schedd.cpu_seconds", cpu_time.as_secs_f64());
                        self.persist_job(ctx, *job);
                        self.notify(ctx, *job);
                        if self.jobs[job].state == PoolJobState::Completed {
                            self.retire_job(*job);
                        }
                    }
                }
                ShadowReport::Vacated { job, done_work } => {
                    if let Some(rec) = self.jobs.get_mut(job) {
                        ctx.metrics().incr("schedd.vacated", 1);
                        rec.done_work = (*done_work).max(rec.done_work);
                        rec.state = if rec.attempts >= self.max_attempts {
                            PoolJobState::Held
                        } else {
                            PoolJobState::Idle
                        };
                        self.persist_job(ctx, *job);
                        self.notify(ctx, *job);
                    }
                }
                ShadowReport::MatchFailed { job } => {
                    if let Some(rec) = self.jobs.get_mut(job) {
                        if rec.state == PoolJobState::Running {
                            rec.state = PoolJobState::Idle;
                            self.persist_job(ctx, *job);
                        }
                    }
                }
            }
            return;
        }
        if let Some(rm) = msg.downcast_ref::<PoolRemove>() {
            if let Some(rec) = self.jobs.get_mut(&rm.job) {
                // A running job's shadow will eventually report; the
                // Removed state wins either way.
                rec.state = PoolJobState::Removed;
                self.persist_job(ctx, rm.job);
                self.notify(ctx, rm.job);
                self.retire_job(rm.job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::negotiator::Negotiator;
    use crate::startd::{OwnerModel, Startd};
    use gridsim::rng::Dist;
    use gridsim::{Config, World};
    use std::collections::BTreeMap as Map;

    /// Submits N pool jobs and records their event streams.
    struct User {
        schedd: Addr,
        jobs: Vec<ClassAd>,
        events: Map<u64, Vec<String>>,
        ids: Map<u64, u64>, // JobId -> client id
    }

    impl Component for User {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, ad) in self.jobs.drain(..).enumerate() {
                ctx.send(
                    self.schedd,
                    PoolSubmit {
                        client_id: i as u64,
                        ad,
                    },
                );
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(sub) = msg.downcast_ref::<PoolSubmitted>() {
                self.ids.insert(sub.job.0, sub.client_id);
            } else if let Some(ev) = msg.downcast_ref::<PoolJobEvent>() {
                let client = self.ids.get(&ev.job.0).copied().unwrap_or(u64::MAX);
                self.events
                    .entry(client)
                    .or_default()
                    .push(format!("{:?}", ev.state));
                let node = ctx.node();
                let flat: Vec<(u64, Vec<String>)> =
                    self.events.iter().map(|(k, v)| (*k, v.clone())).collect();
                ctx.store().put(node, "pool_events", &flat);
            }
        }
    }

    fn job_ad(work_secs: u64) -> ClassAd {
        ClassAd::new()
            .with("TotalWork", work_secs as i64)
            .with("Owner", "jane")
            .with_parsed("Requirements", "TARGET.Arch == \"INTEL\"")
    }

    fn machine_ad() -> ClassAd {
        ClassAd::new().with("Arch", "INTEL").with("Memory", 256i64)
    }

    fn pool(w: &mut World, machines: u32, owner_model: Option<OwnerModel>) -> (Addr, Addr) {
        let central = w.add_node("central");
        let collector = w.add_component(central, "collector", Collector::new());
        let negotiator = w.add_component(
            central,
            "negotiator",
            Negotiator::new(collector, Duration::from_mins(1)),
        );
        for i in 0..machines {
            let n = w.add_node(&format!("exec{i}"));
            let mut startd = Startd::new(&format!("exec{i}"), machine_ad(), collector);
            if let Some(m) = &owner_model {
                startd = startd
                    .with_owner_model(m.clone())
                    .with_ckpt_interval(Some(Duration::from_mins(5)));
            }
            w.add_component(n, "startd", startd);
        }
        (collector, negotiator)
    }

    fn events_for(w: &World, node: NodeId, client: u64) -> Vec<String> {
        let flat: Vec<(u64, Vec<String>)> = w.store().get(node, "pool_events").unwrap_or_default();
        flat.into_iter()
            .find(|(k, _)| *k == client)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }

    #[test]
    fn pool_runs_jobs_to_completion() {
        let mut w = World::new(Config::default().seed(21));
        let (collector, _) = pool(&mut w, 3, None);
        let ns = w.add_node("submit");
        let schedd = w.add_component(ns, "schedd", Schedd::new("schedd1", vec![collector]));
        w.add_component(
            ns,
            "user",
            User {
                schedd,
                jobs: (0..6).map(|_| job_ad(1800)).collect(),
                events: Map::new(),
                ids: Map::new(),
            },
        );
        w.run_until(SimTime::ZERO + Duration::from_hours(6));
        for c in 0..6 {
            let evs = events_for(&w, ns, c);
            assert_eq!(
                evs.last().map(String::as_str),
                Some("Completed"),
                "job {c}: {evs:?}"
            );
        }
        assert_eq!(w.metrics().counter("schedd.completed"), 6);
        // 6 jobs × 30 min on 3 machines ≥ 1 hour; matches took ≥2 cycles.
        assert!(w.metrics().counter("negotiator.matches") >= 6);
    }

    #[test]
    fn preemption_checkpoints_and_migrates() {
        let mut w = World::new(Config::default().seed(22));
        // Owners come back often; 4-hour jobs must survive via checkpoints.
        let (collector, _) = pool(
            &mut w,
            4,
            Some(OwnerModel {
                available_for: Dist::Exp { mean: 3600.0 },
                occupied_for: Dist::Exp { mean: 1800.0 },
            }),
        );
        let ns = w.add_node("submit");
        let schedd = w.add_component(ns, "schedd", Schedd::new("schedd1", vec![collector]));
        w.add_component(
            ns,
            "user",
            User {
                schedd,
                jobs: (0..4).map(|_| job_ad(4 * 3600)).collect(),
                events: Map::new(),
                ids: Map::new(),
            },
        );
        w.run_until(SimTime::ZERO + Duration::from_days(10));
        assert_eq!(
            w.metrics().counter("schedd.completed"),
            4,
            "jobs: vacated={} checkpoints={}",
            w.metrics().counter("schedd.vacated"),
            w.metrics().counter("condor.checkpoints"),
        );
        assert!(
            w.metrics().counter("condor.vacated") > 0,
            "no preemption happened"
        );
        assert!(w.metrics().counter("condor.checkpoints") > 0);
        // Conservation: total machine-busy time across every attempt must
        // cover the total work at least once (re-done work after a vacate
        // is bounded by the checkpoint interval, so the overshoot is
        // limited too).
        let total_work = 4.0 * 4.0 * 3600.0;
        let busy = w
            .metrics()
            .series("condor.busy_startds")
            .expect("busy gauge")
            .integral(SimTime::ZERO, w.now());
        let vacates = w.metrics().counter("condor.vacated") as f64;
        assert!(
            busy >= total_work * 0.999,
            "busy {busy} < work {total_work}"
        );
        let max_waste = vacates * (5.0 * 60.0) + 1.0;
        assert!(
            busy <= total_work + max_waste,
            "busy {busy} exceeds work {total_work} + ckpt-bounded waste {max_waste}"
        );
    }

    #[test]
    fn schedd_crash_recovery_keeps_queue() {
        let mut w = World::new(Config::default().seed(23));
        let (collector, _) = pool(&mut w, 2, None);
        let ns = w.add_node("submit");
        let schedd = w.add_component(ns, "schedd", Schedd::new("schedd1", vec![collector]));
        w.set_boot(ns, move |b| {
            b.add_component(
                "schedd",
                Schedd::recover("schedd1", vec![collector], b.store(), b.node()),
            );
        });
        w.add_component(
            ns,
            "user",
            User {
                schedd,
                jobs: (0..4).map(|_| job_ad(7200)).collect(),
                events: Map::new(),
                ids: Map::new(),
            },
        );
        // Let two jobs start, then crash the submit machine for 20 min.
        w.run_until(SimTime::ZERO + Duration::from_mins(10));
        w.crash_node_now(ns);
        w.run_until(SimTime::ZERO + Duration::from_mins(30));
        w.restart_node_now(ns);
        w.run_until(SimTime::ZERO + Duration::from_days(2));
        // All four jobs eventually complete (recovered queue re-matched).
        assert_eq!(w.metrics().counter("schedd.completed"), 4);
    }

    #[test]
    fn remove_terminates_job() {
        let mut w = World::new(Config::default().seed(24));
        let (collector, _) = pool(&mut w, 1, None);
        let ns = w.add_node("submit");
        let schedd = w.add_component(ns, "schedd", Schedd::new("schedd1", vec![collector]));
        struct Remover {
            schedd: Addr,
        }
        impl Component for Remover {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(
                    self.schedd,
                    PoolSubmit {
                        client_id: 0,
                        ad: super::tests::job_ad(100_000),
                    },
                );
                ctx.set_timer(Duration::from_mins(30), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                ctx.send(self.schedd, PoolRemove { job: JobId(0) });
            }
        }
        w.add_component(ns, "remover", Remover { schedd });
        w.run_until(SimTime::ZERO + Duration::from_hours(2));
        assert_eq!(w.metrics().counter("schedd.completed"), 0);
    }

    #[test]
    fn flocking_uses_machines_from_both_pools() {
        let mut w = World::new(Config::default().seed(25));
        // Pool A: 1 machine. Pool B: 3 machines. Schedd flocks to both.
        let (collector_a, _) = pool(&mut w, 1, None);
        let central_b = w.add_node("centralB");
        let collector_b = w.add_component(central_b, "collectorB", Collector::new());
        w.add_component(
            central_b,
            "negotiatorB",
            Negotiator::new(collector_b, Duration::from_mins(1)),
        );
        for i in 0..3 {
            let n = w.add_node(&format!("poolB-exec{i}"));
            w.add_component(
                n,
                "startd",
                Startd::new(&format!("poolB-exec{i}"), machine_ad(), collector_b),
            );
        }
        let ns = w.add_node("submit");
        let schedd = w.add_component(
            ns,
            "schedd",
            Schedd::new("schedd1", vec![collector_a, collector_b]),
        );
        w.add_component(
            ns,
            "user",
            User {
                schedd,
                jobs: (0..8).map(|_| job_ad(3600)).collect(),
                events: Map::new(),
                ids: Map::new(),
            },
        );
        w.run_until(SimTime::ZERO + Duration::from_hours(4));
        // With only pool A it would take 8 hours; flocking to B's three
        // machines gets everything done within ~2-3 hours.
        assert_eq!(w.metrics().counter("schedd.completed"), 8);
    }
}
