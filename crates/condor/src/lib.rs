#![warn(missing_docs)]
//! `condor` — the intra-domain Condor system (paper §2, §5, Figure 2).
//!
//! Condor-G takes its computation-management half from Condor, and the
//! GlideIn mechanism (paper §5) *is* Condor: GRAM starts ordinary Condor
//! daemons on remote grid resources, they report to the user's personal
//! Collector, and from then on standard Condor machinery — matchmaking,
//! claiming, the Shadow's remote system calls, checkpointing and migration
//! — runs the user's jobs. This crate provides those daemons:
//!
//! * [`Collector`] — the ad repository; machines and schedds advertise
//!   themselves with TTLs and anyone can query by ClassAd constraint.
//! * [`Negotiator`] — the matchmaker; on a fixed cycle it gathers idle job
//!   ads from each schedd and unclaimed machine ads from the collector,
//!   runs `classads::symmetric_match` + Rank, and notifies both sides.
//! * [`Schedd`] — the persistent job queue. Job state survives crashes via
//!   stable storage (the paper's §4.2 requirement); matched jobs get a
//!   [`Shadow`].
//! * [`Startd`] — a machine's execution agent: advertises, accepts claims,
//!   runs jobs with work-progress accounting, serves the owner-returns
//!   preemption model, checkpoints periodically, and vacates gracefully.
//! * [`Shadow`] — the job's home-side agent: serves remote system calls,
//!   receives checkpoints, and turns a vacate into a reschedulable job
//!   with its saved progress (migration conserves checkpointed work).
//! * [`CkptServer`] — a standalone checkpoint repository (paper §5: jobs
//!   checkpoint "to another location (e.g., the originating location or a
//!   local checkpoint server)").

pub mod ckpt;
pub mod collector;
pub mod negotiator;
pub mod proto;
pub mod schedd;
pub mod shadow;
pub mod startd;

pub use ckpt::CkptServer;
pub use collector::Collector;
pub use negotiator::Negotiator;
pub use proto::*;
pub use schedd::Schedd;
pub use shadow::Shadow;
pub use startd::{OwnerModel, Startd};
