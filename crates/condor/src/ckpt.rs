//! The checkpoint server (paper §5: jobs checkpoint "to another location
//! (e.g., the originating location or a local checkpoint server)").

use crate::proto::Checkpoint;
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::HashMap;

/// Ask the server for the latest checkpoint of a job.
#[derive(Debug)]
pub struct FetchCkpt {
    /// Correlation id.
    pub request_id: u64,
    /// Global job id.
    pub global_id: String,
}

/// Fetch answer.
#[derive(Debug)]
pub struct CkptImage {
    /// Correlation id.
    pub request_id: u64,
    /// The stored progress, if any checkpoint exists.
    pub done_work: Option<Duration>,
}

/// A standalone checkpoint repository.
#[derive(Default)]
pub struct CkptServer {
    images: HashMap<String, (Duration, u64)>, // global_id -> (work, bytes)
}

impl CkptServer {
    /// An empty server.
    pub fn new() -> CkptServer {
        CkptServer::default()
    }
}

impl Component for CkptServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(ckpt) = msg.downcast_ref::<Checkpoint>() {
            ctx.metrics().incr("ckpt.stored", 1);
            ctx.metrics().incr("ckpt.bytes", ckpt.image_bytes);
            // Keep only the freshest image per job.
            let entry = self
                .images
                .entry(ckpt.global_id.clone())
                .or_insert((Duration::ZERO, 0));
            if ckpt.done_work >= entry.0 {
                *entry = (ckpt.done_work, ckpt.image_bytes);
            }
            // Mirror count to stable storage for experiment assertions.
            let n = self.images.len() as u64;
            let node = ctx.node();
            ctx.store().put(node, "ckpt/count", &n);
            return;
        }
        if let Ok(fetch) = msg.downcast::<FetchCkpt>() {
            let done_work = self.images.get(&fetch.global_id).map(|&(w, _)| w);
            ctx.send(
                from,
                CkptImage {
                    request_id: fetch.request_id,
                    done_work,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::JobId;
    use gridsim::{Config, World};

    struct Driver {
        server: Addr,
    }

    impl Component for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, work) in [600u64, 1200, 900].into_iter().enumerate() {
                ctx.send(
                    self.server,
                    Checkpoint {
                        job: JobId(1),
                        global_id: "schedd1#1".into(),
                        done_work: Duration::from_secs(work),
                        image_bytes: 1000 * (i as u64 + 1),
                    },
                );
            }
            ctx.set_timer(Duration::from_mins(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(
                self.server,
                FetchCkpt {
                    request_id: 9,
                    global_id: "schedd1#1".into(),
                },
            );
            ctx.send(
                self.server,
                FetchCkpt {
                    request_id: 10,
                    global_id: "nope".into(),
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Ok(img) = msg.downcast::<CkptImage>() {
                let node = ctx.node();
                ctx.store().put(
                    node,
                    &format!("img/{}", img.request_id),
                    &img.done_work.map(|d| d.micros()),
                );
            }
        }
    }

    #[test]
    fn keeps_freshest_image_and_answers_fetches() {
        let mut w = World::new(Config::default().seed(3));
        let ns = w.add_node("ckpt");
        let nd = w.add_node("exec");
        let server = w.add_component(ns, "ckpt", CkptServer::new());
        w.add_component(nd, "driver", Driver { server });
        w.run_until_quiescent();
        // Latest work is 1200s (the 900s checkpoint is stale and ignored).
        assert_eq!(
            w.store().get::<Option<u64>>(nd, "img/9").unwrap(),
            Some(Duration::from_secs(1200).micros())
        );
        assert_eq!(w.store().get::<Option<u64>>(nd, "img/10").unwrap(), None);
        assert_eq!(w.metrics().counter("ckpt.stored"), 3);
    }
}
