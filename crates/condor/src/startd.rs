//! The Startd: a machine's execution agent.
//!
//! Advertises the machine to a collector, accepts claims, runs one job at a
//! time with work-progress accounting, redirects the job's I/O to its
//! shadow, checkpoints periodically, and vacates (with the last checkpoint)
//! when the machine's owner returns or its allocation lease expires. With a
//! lease and an idle timeout this is exactly the daemon a GlideIn starts on
//! a grid node (paper §5: daemons "shut down gracefully when their local
//! allocation expires or when they do not receive any jobs to execute
//! after a (configurable) amount of time").

use crate::proto::{
    ActivateClaim, AdKind, Advertise, Checkpoint, ClaimReply, Invalidate, JobExited, JobId,
    RequestClaim, StartdKeepalive, SyscallBatch, SyscallReply, VacateNotice,
};
use classads::{symmetric_match, ClassAd};
use gridsim::prelude::*;
use gridsim::rng::Dist;
use gridsim::AnyMsg;

/// Desktop-owner activity model: the machine alternates between available
/// and owner-occupied, sampled from the two distributions (seconds).
#[derive(Clone, Debug)]
pub struct OwnerModel {
    /// How long the machine stays available.
    pub available_for: Dist,
    /// How long the owner keeps it once back.
    pub occupied_for: Dist,
}

/// Shadow → startd: release an unclaimed-again machine.
#[derive(Debug)]
pub struct ReleaseClaim;

/// Internal state machine.
enum State {
    /// Owner is using the machine.
    Owner,
    /// Available for claims.
    Unclaimed,
    /// Claimed by a shadow, not yet (or no longer) running.
    Claimed { shadow: Addr },
    /// Running a job.
    Busy(Box<Running>),
}

struct Running {
    shadow: Addr,
    job: JobId,
    global_id: String,
    /// Work completed before this activation (from checkpoints).
    prior_work: Duration,
    /// Work persisted by the last checkpoint this activation.
    ckpt_work: Duration,
    started: SimTime,
    end_timer: TimerId,
    ckpt_timer: Option<TimerId>,
    io_timer: Option<TimerId>,
    io_seq: u64,
    io_interval: Option<Duration>,
    io_bytes: u64,
}

const TAG_ADVERTISE: u64 = 1;
const TAG_OWNER: u64 = 2;
const TAG_END: u64 = 3;
const TAG_CKPT: u64 = 4;
const TAG_IO: u64 = 5;
const TAG_LEASE: u64 = 6;
const TAG_IDLE: u64 = 7;
const TAG_KEEPALIVE: u64 = 8;
/// Busy startds ping their shadow this often.
const KEEPALIVE: Duration = Duration::from_mins(10);
/// Claim-lease timers encode the claim sequence number above this base.
const TAG_CLAIM_LEASE_BASE: u64 = 1_000;
/// An idle (not yet / no longer activated) claim expires after this long
/// without shadow activity — the shadow machine crashed (§4.2's "crash of
/// the machine on which the GridManager is executing" reaches the pool as
/// orphaned claims).
const CLAIM_LEASE: Duration = Duration::from_mins(20);

/// The startd component.
pub struct Startd {
    /// Machine name (advertised).
    name: String,
    /// Static machine attributes (+ machine Requirements/Rank if any).
    base_ad: ClassAd,
    collector: Addr,
    /// Optional checkpoint server; checkpoints also always reach the shadow.
    ckpt_server: Option<Addr>,
    advertise_period: Duration,
    ckpt_interval: Option<Duration>,
    owner_model: Option<OwnerModel>,
    /// Remaining allocation (glideins); at expiry the daemon exits.
    lease: Option<Duration>,
    /// Exit if unclaimed this long (glideins).
    idle_timeout: Option<Duration>,
    state: State,
    idle_since: SimTime,
    /// Bumped on every claim-state change; guards stale lease timers.
    claim_seq: u64,
}

impl Startd {
    /// A pool machine named `name` advertising to `collector`.
    pub fn new(name: &str, base_ad: ClassAd, collector: Addr) -> Startd {
        Startd {
            name: name.to_string(),
            base_ad,
            collector,
            ckpt_server: None,
            advertise_period: Duration::from_mins(2),
            ckpt_interval: Some(Duration::from_mins(10)),
            owner_model: None,
            lease: None,
            idle_timeout: None,
            state: State::Unclaimed,
            idle_since: SimTime::ZERO,
            claim_seq: 0,
        }
    }

    /// Checkpoint to a checkpoint server as well as the shadow.
    pub fn with_ckpt_server(mut self, server: Addr) -> Startd {
        self.ckpt_server = Some(server);
        self
    }

    /// Set the periodic checkpoint interval (`None` disables checkpoints —
    /// vacated jobs then restart from their pre-activation progress).
    pub fn with_ckpt_interval(mut self, interval: Option<Duration>) -> Startd {
        self.ckpt_interval = interval;
        self
    }

    /// Enable the desktop-owner preemption model.
    pub fn with_owner_model(mut self, model: OwnerModel) -> Startd {
        self.owner_model = Some(model);
        self
    }

    /// Glidein mode: exit when the allocation lease ends.
    pub fn with_lease(mut self, lease: Duration) -> Startd {
        self.lease = Some(lease);
        self
    }

    /// Glidein mode: exit if unclaimed for this long.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Startd {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Enter the Claimed state and arm a lease that releases the claim if
    /// the shadow goes silent before activating (or re-activating) it.
    fn enter_claimed(&mut self, ctx: &mut Ctx<'_>, shadow: Addr) {
        self.state = State::Claimed { shadow };
        self.claim_seq += 1;
        ctx.set_timer(CLAIM_LEASE, TAG_CLAIM_LEASE_BASE + self.claim_seq);
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            State::Owner => "Owner",
            State::Unclaimed => "Unclaimed",
            State::Claimed { .. } => "Claimed",
            State::Busy(_) => "Busy",
        }
    }

    fn advertise(&self, ctx: &mut Ctx<'_>) {
        let mut ad = self.base_ad.clone();
        ad.set("Name", self.name.as_str());
        ad.set("State", self.state_name());
        let me = ctx.self_addr();
        ctx.send(
            self.collector,
            Advertise {
                kind: AdKind::Machine,
                name: self.name.clone(),
                ad,
                ttl: self.advertise_period * 3,
                contact: me,
            },
        );
    }

    fn machine_ad(&self) -> ClassAd {
        let mut ad = self.base_ad.clone();
        ad.set("Name", self.name.as_str());
        ad
    }

    /// Work completed so far in the current activation (wall time == CPU
    /// time for a dedicated claim).
    fn progress(run: &Running, now: SimTime) -> Duration {
        run.prior_work + (now - run.started)
    }

    fn do_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let State::Busy(run) = &mut self.state else {
            return;
        };
        let done = Startd::progress(run, now);
        run.ckpt_work = done;
        let image_bytes = 8_000_000; // a paper-era checkpoint image
        let ckpt = Checkpoint {
            job: run.job,
            global_id: run.global_id.clone(),
            done_work: done,
            image_bytes,
        };
        ctx.metrics().incr("condor.checkpoints", 1);
        let shadow = run.shadow;
        let next = self
            .ckpt_interval
            .map(|every| ctx.set_timer(every, TAG_CKPT));
        ctx.send_bulk(shadow, image_bytes, ckpt.clone());
        if let Some(server) = self.ckpt_server {
            ctx.send_bulk(server, image_bytes, ckpt);
        }
        if let State::Busy(run) = &mut self.state {
            run.ckpt_timer = next;
        }
    }

    /// Vacate a running job (owner return / lease expiry): notify the
    /// shadow with the last checkpointed progress.
    fn vacate(&mut self, ctx: &mut Ctx<'_>, next: State) {
        let now = ctx.now();
        if let State::Busy(run) = std::mem::replace(&mut self.state, next) {
            ctx.metrics().gauge_delta("condor.busy_startds", now, -1.0);
            ctx.metrics().incr("condor.vacated", 1);
            ctx.trace(
                "startd.vacate",
                format!("{} {} at {}", self.name, run.job, now),
            );
            ctx.cancel_timer(run.end_timer);
            if let Some(t) = run.ckpt_timer {
                ctx.cancel_timer(t);
            }
            if let Some(t) = run.io_timer {
                ctx.cancel_timer(t);
            }
            ctx.send(
                run.shadow,
                VacateNotice {
                    job: run.job,
                    checkpointed_work: run.ckpt_work,
                },
            );
        }
        self.idle_since = now;
    }

    fn shutdown(&mut self, ctx: &mut Ctx<'_>, why: &str) {
        ctx.trace("startd.exit", format!("{} ({why})", self.name));
        ctx.metrics().incr("condor.startd_exits", 1);
        self.vacate(ctx, State::Owner);
        ctx.send(
            self.collector,
            Invalidate {
                kind: AdKind::Machine,
                name: self.name.clone(),
            },
        );
        ctx.kill(ctx.self_addr());
    }
}

impl Component for Startd {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.idle_since = ctx.now();
        self.advertise(ctx);
        ctx.set_timer(self.advertise_period, TAG_ADVERTISE);
        if let Some(model) = &self.owner_model {
            let first = ctx.rng().duration(&model.available_for);
            ctx.set_timer(first, TAG_OWNER);
        }
        if let Some(lease) = self.lease {
            ctx.set_timer(lease, TAG_LEASE);
        }
        if let Some(idle) = self.idle_timeout {
            ctx.set_timer(idle, TAG_IDLE);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        match tag {
            TAG_ADVERTISE => {
                self.advertise(ctx);
                ctx.set_timer(self.advertise_period, TAG_ADVERTISE);
            }
            TAG_OWNER => {
                let Some(model) = self.owner_model.clone() else {
                    return;
                };
                match self.state {
                    State::Owner => {
                        // Owner leaves: machine available again.
                        self.state = State::Unclaimed;
                        self.idle_since = ctx.now();
                        let next = ctx.rng().duration(&model.available_for);
                        ctx.set_timer(next, TAG_OWNER);
                    }
                    _ => {
                        // Owner returns: preempt whatever is here.
                        self.vacate(ctx, State::Owner);
                        let next = ctx.rng().duration(&model.occupied_for);
                        ctx.set_timer(next, TAG_OWNER);
                    }
                }
                self.advertise(ctx);
            }
            TAG_END => {
                let now = ctx.now();
                if let State::Busy(run) = std::mem::replace(&mut self.state, State::Unclaimed) {
                    let cpu_time = now - run.started;
                    ctx.metrics().incr("condor.jobs_finished", 1);
                    ctx.metrics()
                        .observe("condor.job_cpu_seconds", cpu_time.as_secs_f64());
                    ctx.trace("startd.done", format!("{} {}", self.name, run.job));
                    if let Some(t) = run.ckpt_timer {
                        ctx.cancel_timer(t);
                    }
                    if let Some(t) = run.io_timer {
                        ctx.cancel_timer(t);
                    }
                    self.enter_claimed(ctx, run.shadow);
                    ctx.send(
                        run.shadow,
                        JobExited {
                            job: run.job,
                            ok: true,
                            cpu_time,
                        },
                    );
                    ctx.metrics().gauge_delta("condor.busy_startds", now, -1.0);
                }
            }
            TAG_CKPT => {
                if matches!(self.state, State::Busy(_)) {
                    self.do_checkpoint(ctx);
                }
            }
            TAG_IO => {
                let State::Busy(run) = &mut self.state else {
                    return;
                };
                run.io_seq += 1;
                let batch = SyscallBatch {
                    bytes: run.io_bytes,
                    seq: run.io_seq,
                };
                ctx.metrics().incr("condor.syscall_batches", 1);
                ctx.metrics().incr("condor.syscall_bytes", run.io_bytes);
                let (shadow, bytes, interval) = (run.shadow, run.io_bytes, run.io_interval);
                let next = interval.map(|every| ctx.set_timer(every, TAG_IO));
                ctx.send_bulk(shadow, bytes, batch);
                if let State::Busy(run) = &mut self.state {
                    run.io_timer = next;
                }
            }
            TAG_KEEPALIVE => {
                if let State::Busy(run) = &self.state {
                    ctx.send(run.shadow, StartdKeepalive);
                    ctx.set_timer(KEEPALIVE, TAG_KEEPALIVE);
                }
            }
            TAG_LEASE => self.shutdown(ctx, "allocation lease expired"),
            t if t > TAG_CLAIM_LEASE_BASE
                // Idle-claim lease expired: if the claim is still the same
                // one and never activated, release the machine.
                && t - TAG_CLAIM_LEASE_BASE == self.claim_seq
                    && matches!(self.state, State::Claimed { .. }) =>
            {
                ctx.metrics().incr("condor.claim_leases_expired", 1);
                self.state = State::Unclaimed;
                self.idle_since = ctx.now();
                self.advertise(ctx);
            }
            TAG_IDLE => {
                let should_exit = matches!(self.state, State::Unclaimed)
                    && self
                        .idle_timeout
                        .is_some_and(|t| ctx.now() - self.idle_since >= t);
                if should_exit {
                    self.shutdown(ctx, "idle timeout");
                } else if let Some(t) = self.idle_timeout {
                    ctx.set_timer(t, TAG_IDLE);
                }
            }
            _ => {}
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        // Graceful teardown (glidein allocation revoked): vacate the job
        // with its last checkpoint and withdraw the ad.
        self.vacate(ctx, State::Owner);
        ctx.send(
            self.collector,
            Invalidate {
                kind: AdKind::Machine,
                name: self.name.clone(),
            },
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(req) = msg.downcast_ref::<RequestClaim>() {
            let accept = matches!(self.state, State::Unclaimed)
                && symmetric_match(&self.machine_ad(), &req.job_ad);
            if accept {
                self.enter_claimed(ctx, from);
                ctx.metrics().incr("condor.claims", 1);
                ctx.send(from, ClaimReply::Accepted);
            } else {
                ctx.metrics().incr("condor.claims_rejected", 1);
                ctx.send(
                    from,
                    ClaimReply::Rejected {
                        reason: format!("machine is {}", self.state_name()),
                    },
                );
            }
            return;
        }
        if let Some(act) = msg.downcast_ref::<ActivateClaim>() {
            match self.state {
                State::Claimed { shadow } if shadow == from => {
                    let now = ctx.now();
                    self.claim_seq += 1; // activation voids the idle lease
                    let remaining = act.total_work.saturating_sub(act.done_work);
                    let end_timer = ctx.set_timer(remaining, TAG_END);
                    let ckpt_timer = self
                        .ckpt_interval
                        .map(|every| ctx.set_timer(every, TAG_CKPT));
                    let io_timer = act.io_interval.map(|every| ctx.set_timer(every, TAG_IO));
                    ctx.set_timer(KEEPALIVE, TAG_KEEPALIVE);
                    self.state = State::Busy(Box::new(Running {
                        shadow,
                        job: act.job,
                        global_id: act.global_id.clone(),
                        prior_work: act.done_work,
                        ckpt_work: act.done_work,
                        started: now,
                        end_timer,
                        ckpt_timer,
                        io_timer,
                        io_seq: 0,
                        io_interval: act.io_interval,
                        io_bytes: act.io_bytes,
                    }));
                    ctx.metrics().gauge_delta("condor.busy_startds", now, 1.0);
                }
                _ => {
                    // Claim evaporated (owner returned between claim and
                    // activate): bounce the job back with no progress made.
                    ctx.send(
                        from,
                        VacateNotice {
                            job: act.job,
                            checkpointed_work: act.done_work,
                        },
                    );
                }
            }
            return;
        }
        if msg.is::<ReleaseClaim>() {
            if let State::Claimed { shadow } = self.state {
                if shadow == from {
                    self.state = State::Unclaimed;
                    self.idle_since = ctx.now();
                    if let Some(t) = self.idle_timeout {
                        ctx.set_timer(t, TAG_IDLE);
                    }
                }
            }
            return;
        }
        if msg.is::<SyscallReply>() {
            // Flow control would live here; the model treats replies as
            // fire-and-forget acknowledgements.
        }
    }
}
