//! The Collector: the pool's ad repository.

use crate::proto::{AdKind, Advertise, CollectorAds, CollectorQuery, Invalidate};
use classads::{ClassAd, EvalCtx, Expr, Value};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

struct Entry {
    contact: Addr,
    /// Shared so query answers hand out handles instead of deep copies.
    ad: Rc<ClassAd>,
    expires: SimTime,
}

/// The pool collector. Machines (startds) and submitters (schedds)
/// advertise here; the negotiator and the Condor-G scheduler query it.
/// GlideIn startds advertise to the *user's personal* collector, which is
/// the whole trick of §5.
#[derive(Default)]
pub struct Collector {
    tables: BTreeMap<(AdKind, String), Entry>,
    /// Parse cache for query constraints: the negotiator asks the same one
    /// or two constraint strings every cycle, so parsing is once ever, not
    /// once per query. `None` caches a parse failure.
    constraints: HashMap<String, Option<Rc<Expr>>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }
}

impl Component for Collector {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        let msg = match msg.downcast::<Advertise>() {
            Ok(ad) => {
                ctx.metrics().incr("collector.advertisements", 1);
                let Advertise {
                    kind,
                    name,
                    ad,
                    ttl,
                    contact,
                } = *ad;
                self.tables.insert(
                    (kind, name),
                    Entry {
                        contact,
                        ad: Rc::new(ad),
                        expires: ctx.now() + ttl,
                    },
                );
                return;
            }
            Err(msg) => msg,
        };
        if let Some(inv) = msg.downcast_ref::<Invalidate>() {
            self.tables.remove(&(inv.kind, inv.name.clone()));
            return;
        }
        let Ok(query) = msg.downcast::<CollectorQuery>() else {
            return;
        };
        let CollectorQuery {
            request_id,
            kind,
            constraint,
        } = *query;
        let now = ctx.now();
        self.tables.retain(|_, e| e.expires > now);
        let expr = self
            .constraints
            .entry(constraint)
            .or_insert_with_key(|c| classads::parse_expr(c).ok().map(Rc::new))
            .clone();
        let Some(expr) = expr else {
            ctx.send(
                from,
                CollectorAds {
                    request_id,
                    ads: Vec::new(),
                },
            );
            return;
        };
        let ads: Vec<(String, Addr, Rc<ClassAd>)> = self
            .tables
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .filter(|(_, e)| EvalCtx::solo(&e.ad).eval(&expr) == Value::Bool(true))
            .map(|((_, name), e)| (name.clone(), e.contact, Rc::clone(&e.ad)))
            .collect();
        ctx.metrics().incr("collector.queries", 1);
        ctx.send(from, CollectorAds { request_id, ads });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{Config, World};

    struct Driver {
        collector: Addr,
        script: u32,
    }

    impl Component for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.self_addr();
            ctx.send(
                self.collector,
                Advertise {
                    kind: AdKind::Machine,
                    name: "m1".into(),
                    ad: ClassAd::new()
                        .with("State", "Unclaimed")
                        .with("Memory", 64i64),
                    ttl: Duration::from_mins(5),
                    contact: me,
                },
            );
            ctx.send(
                self.collector,
                Advertise {
                    kind: AdKind::Machine,
                    name: "m2".into(),
                    ad: ClassAd::new()
                        .with("State", "Claimed")
                        .with("Memory", 128i64),
                    ttl: Duration::from_mins(5),
                    contact: me,
                },
            );
            ctx.send(
                self.collector,
                Advertise {
                    kind: AdKind::Submitter,
                    name: "schedd1".into(),
                    ad: ClassAd::new().with("IdleJobs", 3i64),
                    ttl: Duration::from_mins(5),
                    contact: me,
                },
            );
            match self.script {
                0 => {
                    ctx.set_timer(Duration::from_secs(1), 0);
                }
                1 => {
                    // Query only after the TTL has lapsed.
                    ctx.set_timer(Duration::from_mins(10), 0);
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(
                self.collector,
                CollectorQuery {
                    request_id: 1,
                    kind: AdKind::Machine,
                    constraint: "State == \"Unclaimed\"".into(),
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(ads) = msg.downcast_ref::<CollectorAds>() {
                let names: Vec<String> = ads.ads.iter().map(|(n, _, _)| n.clone()).collect();
                let node = ctx.node();
                ctx.store().put(node, "result", &names);
            }
        }
    }

    #[test]
    fn constraint_queries_by_kind() {
        let mut w = World::new(Config::default().seed(1));
        let nc = w.add_node("central");
        let nd = w.add_node("driver");
        let collector = w.add_component(nc, "collector", Collector::new());
        w.add_component(
            nd,
            "driver",
            Driver {
                collector,
                script: 0,
            },
        );
        w.run_until_quiescent();
        let names: Vec<String> = w.store().get(nd, "result").unwrap();
        assert_eq!(names, vec!["m1"]);
    }

    #[test]
    fn ads_expire() {
        let mut w = World::new(Config::default().seed(1));
        let nc = w.add_node("central");
        let nd = w.add_node("driver");
        let collector = w.add_component(nc, "collector", Collector::new());
        w.add_component(
            nd,
            "driver",
            Driver {
                collector,
                script: 1,
            },
        );
        w.run_until_quiescent();
        let names: Vec<String> = w.store().get(nd, "result").unwrap();
        assert!(names.is_empty(), "stale ads served: {names:?}");
    }
}
