//! Messages between the Condor daemons.

use classads::ClassAd;
use gridsim::time::{Duration, SimTime};
use gridsim::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::rc::Rc;

/// A job's identity within one schedd (cluster.proc in real Condor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle of a pool job at the schedd.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolJobState {
    /// Waiting for a match.
    Idle,
    /// Matched and executing under a shadow.
    Running,
    /// Finished.
    Completed,
    /// Removed by the user.
    Removed,
    /// Held (e.g. repeated failures).
    Held,
}

// ---- collector traffic ----------------------------------------------------

/// Advertise (or refresh) an ad. Machines use `kind = Machine`; schedds use
/// `kind = Submitter`.
#[derive(Debug)]
pub struct Advertise {
    /// What kind of ad.
    pub kind: AdKind,
    /// Unique name within the kind (machine name, schedd name).
    pub name: String,
    /// The ad itself.
    pub ad: ClassAd,
    /// Freshness window.
    pub ttl: Duration,
    /// Where the advertiser can be reached.
    pub contact: Addr,
}

/// Ad categories in the collector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AdKind {
    /// An execution machine (startd).
    Machine,
    /// A job queue (schedd).
    Submitter,
}

/// Query the collector for ads of `kind` matching `constraint`.
#[derive(Debug)]
pub struct CollectorQuery {
    /// Correlation id.
    pub request_id: u64,
    /// Which table.
    pub kind: AdKind,
    /// ClassAd boolean expression over candidate ads (`"TRUE"` for all).
    pub constraint: String,
}

/// Collector answer: `(name, contact, ad)` per match. Ads are shared
/// handles into the collector's tables — queries and the negotiation
/// pipeline they feed never deep-copy an ad.
#[derive(Debug)]
pub struct CollectorAds {
    /// Correlation id.
    pub request_id: u64,
    /// The matching ads.
    pub ads: Vec<(String, Addr, Rc<ClassAd>)>,
}

/// Remove an ad eagerly (graceful daemon shutdown).
#[derive(Debug)]
pub struct Invalidate {
    /// Which table.
    pub kind: AdKind,
    /// The ad's name.
    pub name: String,
}

// ---- negotiation ------------------------------------------------------------

/// Negotiator → schedd: send me your idle jobs.
#[derive(Debug)]
pub struct NegotiationRequest {
    /// Correlation id (cycle number).
    pub cycle: u64,
}

/// Schedd → negotiator: idle jobs needing machines.
#[derive(Debug)]
pub struct IdleJobs {
    /// Correlation id (cycle number).
    pub cycle: u64,
    /// `(id, ad)` for each idle job (shared handles into the queue).
    pub jobs: Vec<(JobId, Rc<ClassAd>)>,
}

/// Negotiator → schedd: a match was found.
#[derive(Debug)]
pub struct MatchNotify {
    /// The matched job.
    pub job: JobId,
    /// The machine's startd.
    pub startd: Addr,
    /// The machine ad at match time (for the shadow's records).
    pub machine_ad: Rc<ClassAd>,
}

// ---- claiming & execution -----------------------------------------------------

/// Shadow → startd: claim this machine for a job.
#[derive(Debug)]
pub struct RequestClaim {
    /// The job ad (Requirements are re-checked at claim time).
    pub job_ad: Rc<ClassAd>,
    /// The job's identity (for logging).
    pub job: JobId,
}

/// Startd → shadow: claim outcome.
#[derive(Debug)]
pub enum ClaimReply {
    /// Machine is yours; activate when ready.
    Accepted,
    /// Machine no longer available (owner returned, someone else claimed,
    /// requirements failed).
    Rejected {
        /// Why.
        reason: String,
    },
}

/// Shadow → startd: start executing.
#[derive(Debug)]
pub struct ActivateClaim {
    /// The job occupying the claim.
    pub job: JobId,
    /// Globally unique id (schedd name + job id) for checkpoint storage.
    pub global_id: String,
    /// Total work the job needs (CPU-seconds).
    pub total_work: Duration,
    /// Work already completed (from a checkpoint, on migration).
    pub done_work: Duration,
    /// Remote I/O: the running job issues a batch of redirected system
    /// calls every this often (None = job does no remote I/O).
    pub io_interval: Option<Duration>,
    /// Bytes moved per remote I/O batch.
    pub io_bytes: u64,
}

/// Startd → shadow: redirected system call batch (paper §5: system call
/// trapping redirects I/O "back to the originating system").
#[derive(Debug)]
pub struct SyscallBatch {
    /// Bytes transferred in this batch.
    pub bytes: u64,
    /// Batch sequence number.
    pub seq: u64,
}

/// Shadow → startd: syscall batch served.
#[derive(Debug)]
pub struct SyscallReply {
    /// Echo of the batch number.
    pub seq: u64,
}

/// Startd → shadow (or checkpoint server): periodic checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The job.
    pub job: JobId,
    /// Globally unique name for checkpoint-server storage.
    pub global_id: String,
    /// Total work completed as of this checkpoint.
    pub done_work: Duration,
    /// Checkpoint image size (bytes) — pays transfer cost.
    pub image_bytes: u64,
}

/// Startd → shadow: periodic liveness keepalive while a job runs (the
/// shadow's watchdog would otherwise misfire on quiet jobs that neither
/// checkpoint nor do remote I/O for long stretches).
#[derive(Debug)]
pub struct StartdKeepalive;

/// Startd → shadow: the job finished.
#[derive(Debug)]
pub struct JobExited {
    /// The job.
    pub job: JobId,
    /// Clean exit?
    pub ok: bool,
    /// Total CPU time consumed on this machine.
    pub cpu_time: Duration,
}

/// Startd → shadow: the machine was reclaimed; here is the last checkpoint.
#[derive(Debug)]
pub struct VacateNotice {
    /// The job.
    pub job: JobId,
    /// Work completed per the last checkpoint (work since then is lost).
    pub checkpointed_work: Duration,
}

/// Shadow → schedd: terminal outcomes.
#[derive(Debug)]
pub enum ShadowReport {
    /// Job finished.
    Done {
        /// The job.
        job: JobId,
        /// Clean exit?
        ok: bool,
        /// CPU time billed on the final machine.
        cpu_time: Duration,
    },
    /// Job was vacated; reschedule it with this much work done.
    Vacated {
        /// The job.
        job: JobId,
        /// Checkpointed progress to resume from.
        done_work: Duration,
    },
    /// The claim never activated (rejected); job back to idle.
    MatchFailed {
        /// The job.
        job: JobId,
    },
}

// ---- user-facing schedd API ------------------------------------------------

/// Submit a pool job to a schedd. The ad must carry `TotalWork` (seconds);
/// optional: `Requirements`, `Rank`, `IoIntervalSecs`, `IoBytes`,
/// `CkptImageBytes`.
#[derive(Debug)]
pub struct PoolSubmit {
    /// Submitter correlation id.
    pub client_id: u64,
    /// The job ad.
    pub ad: ClassAd,
}

/// Schedd reply to a submit.
#[derive(Debug)]
pub struct PoolSubmitted {
    /// Echo of the submitter id.
    pub client_id: u64,
    /// The queue id assigned.
    pub job: JobId,
}

/// Unsolicited job state notification to the submitter.
#[derive(Debug)]
pub struct PoolJobEvent {
    /// The job.
    pub job: JobId,
    /// State entered.
    pub state: PoolJobState,
    /// When.
    pub at: SimTime,
}

/// Remove a job.
#[derive(Debug)]
pub struct PoolRemove {
    /// The job.
    pub job: JobId,
}
