//! The Negotiator: the pool's matchmaker.
//!
//! On a fixed cycle it queries the collector for unclaimed machines and
//! registered submitters, asks each schedd for its idle jobs, and pairs
//! jobs with machines using the ClassAd symmetric match, ordering
//! candidates by the job's `Rank` (Raman et al.'s matchmaking framework,
//! the paper's \[25\]).
//!
//! With [`Negotiator::with_weather`], each cycle also publishes the
//! current grid weather onto glidein machine ads (`SiteSuccessRate`,
//! `SiteQueueWaitSecs`, `SiteCommitTimeoutRate`) so job `Requirements`
//! and `Rank` expressions can steer on site health, and machines at
//! quarantined sites sit the cycle out entirely — the matchmaking half of
//! the adaptive-brokering loop.

use crate::proto::{
    AdKind, CollectorAds, CollectorQuery, IdleJobs, MatchNotify, NegotiationRequest,
};
use classads::{half_match_expr, rank_expr, ClassAd, Expr, LiteralAttrs, RequirementsPrefilter};
use gridsim::obs::{grid_weather, HealthPolicy, SiteHealthTracker, SiteWeather};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::HashMap;
use std::rc::Rc;

const TAG_CYCLE: u64 = 1;

/// A machine prepared for matchmaking: its `Requirements` pre-extracted and
/// its literal attributes indexed for job-side pre-filters. Built once per
/// machine and reused across cycles while the collector keeps serving the
/// same ad handle (re-advertisement replaces the handle, which invalidates
/// the cache entry via pointer identity).
struct MachineInfo {
    ad: Rc<ClassAd>,
    /// The machine's own `Requirements` (cloned out of the ad so the struct
    /// isn't self-referential).
    requirements: Option<Expr>,
    literals: LiteralAttrs,
}

impl MachineInfo {
    fn prepare(ad: Rc<ClassAd>) -> MachineInfo {
        let requirements = ad.get("Requirements").cloned();
        let literals = LiteralAttrs::of(&ad);
        MachineInfo {
            ad,
            requirements,
            literals,
        }
    }
}

/// Where a cycle stands.
enum Phase {
    Idle,
    /// Waiting for the two collector answers.
    Collecting {
        machines: Option<Vec<(String, Addr, Rc<ClassAd>)>>,
        submitters: Option<Vec<(String, Addr, Rc<ClassAd>)>>,
    },
    /// Waiting for schedds' idle-job lists.
    Negotiating {
        machines: Vec<(String, Addr, Rc<ClassAd>)>,
        outstanding: usize,
        jobs: Vec<(Addr, crate::proto::JobId, Rc<ClassAd>)>,
    },
}

/// The negotiator component.
pub struct Negotiator {
    collector: Addr,
    period: Duration,
    cycle: u64,
    phase: Phase,
    /// Prepared machines from the previous cycle, keyed by name.
    machine_cache: HashMap<String, MachineInfo>,
    /// Weather-driven adaptation, if enabled (see
    /// [`Negotiator::with_weather`]).
    weather: Option<SiteHealthTracker>,
}

const REQ_MACHINES: u64 = 1;
const REQ_SUBMITTERS: u64 = 2;

impl Negotiator {
    /// A matchmaker for the pool rooted at `collector`, cycling every
    /// `period`.
    pub fn new(collector: Addr, period: Duration) -> Negotiator {
        Negotiator {
            collector,
            period,
            cycle: 0,
            phase: Phase::Idle,
            machine_cache: HashMap::new(),
            weather: None,
        }
    }

    /// Enable weather-driven adaptation: each cycle, glidein machine ads
    /// are annotated with their site's current weather, machines at
    /// quarantined sites are skipped, and health transitions are traced
    /// as `broker.*` events. Off by default — the vanilla negotiator's
    /// matches (and its trace) stay byte-identical.
    pub fn with_weather(mut self, policy: HealthPolicy) -> Negotiator {
        self.weather = Some(SiteHealthTracker::new(policy));
        self
    }

    /// The weather row for a machine, via its `GlideinSite` attribute.
    fn site_row<'a>(rows: &'a [SiteWeather], ad: &ClassAd) -> Option<&'a SiteWeather> {
        let site = ad.get_str("GlideinSite")?;
        rows.iter().find(|r| r.site == site)
    }

    /// Clone-and-annotate a machine ad with its site's weather so job
    /// `Requirements`/`Rank` expressions can evaluate against it.
    fn annotate(ad: &ClassAd, row: &SiteWeather) -> ClassAd {
        let mut out = ad.clone();
        if let Some(rate) = row.success_rate {
            out.set("SiteSuccessRate", rate);
        }
        if let Some(wait) = row.median_wait_secs {
            out.set("SiteQueueWaitSecs", wait);
        }
        if let Some(rate) = row.commit_timeout_rate {
            out.set("SiteCommitTimeoutRate", rate);
        }
        out
    }

    fn start_cycle(&mut self, ctx: &mut Ctx<'_>) {
        self.cycle += 1;
        ctx.metrics().incr("negotiator.cycles", 1);
        self.phase = Phase::Collecting {
            machines: None,
            submitters: None,
        };
        ctx.send(
            self.collector,
            CollectorQuery {
                request_id: REQ_MACHINES,
                kind: AdKind::Machine,
                constraint: "State == \"Unclaimed\"".into(),
            },
        );
        ctx.send(
            self.collector,
            CollectorQuery {
                request_id: REQ_SUBMITTERS,
                kind: AdKind::Submitter,
                constraint: "TRUE".into(),
            },
        );
        ctx.set_timer(self.period, TAG_CYCLE);
    }

    fn maybe_negotiate(&mut self, ctx: &mut Ctx<'_>) {
        let Phase::Collecting {
            machines,
            submitters,
        } = &mut self.phase
        else {
            return;
        };
        let (Some(_), Some(_)) = (machines.as_ref(), submitters.as_ref()) else {
            return;
        };
        let machines = machines.take().unwrap();
        let submitters = submitters.take().unwrap();
        if machines.is_empty() || submitters.is_empty() {
            self.phase = Phase::Idle;
            return;
        }
        let outstanding = submitters.len();
        for (_, schedd, _) in &submitters {
            ctx.send(*schedd, NegotiationRequest { cycle: self.cycle });
        }
        self.phase = Phase::Negotiating {
            machines,
            outstanding,
            jobs: Vec::new(),
        };
    }

    fn finish_cycle(&mut self, ctx: &mut Ctx<'_>) {
        let Phase::Negotiating { machines, jobs, .. } =
            std::mem::replace(&mut self.phase, Phase::Idle)
        else {
            return;
        };
        // Adaptive mode: refresh the site-health view before matching and
        // trace the transitions it decides on.
        let weather_rows = self.weather.as_mut().map(|tracker| {
            let rows = grid_weather(ctx.metrics());
            let now = ctx.now();
            for ev in tracker.observe(&rows, now) {
                ctx.metrics().incr("negotiator.health_transitions", 1);
                ctx.trace_with(ev.action.kind(), || {
                    format!("site={} reason={}", ev.site, ev.reason)
                });
            }
            rows
        });
        // Prepare machines, reusing last cycle's work whenever the
        // collector handed back the same ad (pointer identity on the shared
        // handle — a re-advertised machine gets a fresh handle and a fresh
        // entry). Anything left in the cache afterwards vanished from the
        // pool, so it is dropped. Weather annotations rewrite the ads, so
        // adaptive cycles skip the cache and prepare fresh.
        let mut free: Vec<(String, Addr, MachineInfo)> = machines
            .into_iter()
            .filter_map(|(name, startd, ad)| {
                let info = match (&weather_rows, &self.weather) {
                    (Some(rows), Some(tracker)) => {
                        if let Some(row) = Negotiator::site_row(rows, &ad) {
                            if tracker.is_quarantined(&row.site) {
                                ctx.trace_with("negotiator.skip_quarantined", || {
                                    format!("{name} site={}", row.site)
                                });
                                return None;
                            }
                            MachineInfo::prepare(Rc::new(Negotiator::annotate(&ad, row)))
                        } else {
                            MachineInfo::prepare(ad)
                        }
                    }
                    _ => match self.machine_cache.remove(&name) {
                        Some(info) if Rc::ptr_eq(&info.ad, &ad) => info,
                        _ => MachineInfo::prepare(ad),
                    },
                };
                Some((name, startd, info))
            })
            .collect();
        self.machine_cache.clear();
        // Greedy: jobs in arrival order, each taking its best-ranked
        // compatible machine.
        let mut matched = 0u64;
        for (schedd, job, job_ad) in jobs {
            // Pull the job's Requirements and Rank once, not per machine,
            // and compile the Requirements into a literal pre-filter.
            let req = job_ad.get("Requirements");
            let rank = job_ad.get("Rank");
            let prefilter = RequirementsPrefilter::for_requirements(req, &job_ad);
            let mut best: Option<(usize, f64)> = None;
            for (i, (_, _, m)) in free.iter().enumerate() {
                // The pre-filter only rejects machines whose full evaluation
                // could not return true, so the match outcome (and therefore
                // the trace) is exactly the unfiltered one.
                if prefilter.rejects(&m.literals) {
                    continue;
                }
                if half_match_expr(req, &job_ad, &m.ad)
                    && half_match_expr(m.requirements.as_ref(), &m.ad, &job_ad)
                {
                    let r = rank_expr(rank, &job_ad, &m.ad);
                    if best.is_none_or(|(_, br)| r > br) {
                        best = Some((i, r));
                    }
                }
            }
            if let Some((i, _)) = best {
                let (name, startd, info) = free.remove(i);
                matched += 1;
                ctx.trace_with("negotiator.match", || format!("{job} -> {name}"));
                ctx.send(
                    schedd,
                    MatchNotify {
                        job,
                        startd,
                        machine_ad: info.ad,
                    },
                );
            }
        }
        // Unmatched machines carry their prepared state into the next cycle.
        for (name, _, info) in free {
            self.machine_cache.insert(name, info);
        }
        ctx.metrics().incr("negotiator.matches", matched);
    }
}

impl Component for Negotiator {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.start_cycle(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_CYCLE {
            // If the previous cycle is still mid-negotiation (a schedd
            // never answered — crashed or partitioned), close it out first.
            if matches!(self.phase, Phase::Negotiating { .. }) {
                self.finish_cycle(ctx);
            }
            self.start_cycle(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if msg.is::<CollectorAds>() {
            let ads = msg.downcast::<CollectorAds>().expect("checked");
            if let Phase::Collecting {
                machines,
                submitters,
            } = &mut self.phase
            {
                match ads.request_id {
                    REQ_MACHINES => *machines = Some(ads.ads),
                    REQ_SUBMITTERS => *submitters = Some(ads.ads),
                    _ => {}
                }
                self.maybe_negotiate(ctx);
            }
            return;
        }
        if let Ok(idle) = msg.downcast::<IdleJobs>() {
            if idle.cycle != self.cycle {
                return; // stale answer from a previous cycle
            }
            if let Phase::Negotiating {
                outstanding, jobs, ..
            } = &mut self.phase
            {
                for (id, ad) in idle.jobs {
                    jobs.push((from, id, ad));
                }
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.finish_cycle(ctx);
                }
            }
        }
    }
}
