//! The Negotiator: the pool's matchmaker.
//!
//! On a fixed cycle it queries the collector for unclaimed machines and
//! registered submitters, asks each schedd for its idle jobs, and pairs
//! jobs with machines using the ClassAd symmetric match, ordering
//! candidates by the job's `Rank` (Raman et al.'s matchmaking framework,
//! the paper's \[25\]).

use crate::proto::{
    AdKind, CollectorAds, CollectorQuery, IdleJobs, MatchNotify, NegotiationRequest,
};
use classads::{rank, symmetric_match, ClassAd};
use gridsim::prelude::*;
use gridsim::AnyMsg;

const TAG_CYCLE: u64 = 1;

/// Where a cycle stands.
enum Phase {
    Idle,
    /// Waiting for the two collector answers.
    Collecting {
        machines: Option<Vec<(String, Addr, ClassAd)>>,
        submitters: Option<Vec<(String, Addr, ClassAd)>>,
    },
    /// Waiting for schedds' idle-job lists.
    Negotiating {
        machines: Vec<(String, Addr, ClassAd)>,
        outstanding: usize,
        jobs: Vec<(Addr, crate::proto::JobId, ClassAd)>,
    },
}

/// The negotiator component.
pub struct Negotiator {
    collector: Addr,
    period: Duration,
    cycle: u64,
    phase: Phase,
}

const REQ_MACHINES: u64 = 1;
const REQ_SUBMITTERS: u64 = 2;

impl Negotiator {
    /// A matchmaker for the pool rooted at `collector`, cycling every
    /// `period`.
    pub fn new(collector: Addr, period: Duration) -> Negotiator {
        Negotiator {
            collector,
            period,
            cycle: 0,
            phase: Phase::Idle,
        }
    }

    fn start_cycle(&mut self, ctx: &mut Ctx<'_>) {
        self.cycle += 1;
        ctx.metrics().incr("negotiator.cycles", 1);
        self.phase = Phase::Collecting {
            machines: None,
            submitters: None,
        };
        ctx.send(
            self.collector,
            CollectorQuery {
                request_id: REQ_MACHINES,
                kind: AdKind::Machine,
                constraint: "State == \"Unclaimed\"".into(),
            },
        );
        ctx.send(
            self.collector,
            CollectorQuery {
                request_id: REQ_SUBMITTERS,
                kind: AdKind::Submitter,
                constraint: "TRUE".into(),
            },
        );
        ctx.set_timer(self.period, TAG_CYCLE);
    }

    fn maybe_negotiate(&mut self, ctx: &mut Ctx<'_>) {
        let Phase::Collecting {
            machines,
            submitters,
        } = &mut self.phase
        else {
            return;
        };
        let (Some(_), Some(_)) = (machines.as_ref(), submitters.as_ref()) else {
            return;
        };
        let machines = machines.take().unwrap();
        let submitters = submitters.take().unwrap();
        if machines.is_empty() || submitters.is_empty() {
            self.phase = Phase::Idle;
            return;
        }
        let outstanding = submitters.len();
        for (_, schedd, _) in &submitters {
            ctx.send(*schedd, NegotiationRequest { cycle: self.cycle });
        }
        self.phase = Phase::Negotiating {
            machines,
            outstanding,
            jobs: Vec::new(),
        };
    }

    fn finish_cycle(&mut self, ctx: &mut Ctx<'_>) {
        let Phase::Negotiating { machines, jobs, .. } =
            std::mem::replace(&mut self.phase, Phase::Idle)
        else {
            return;
        };
        // Greedy: jobs in arrival order, each taking its best-ranked
        // compatible machine.
        let mut free: Vec<(String, Addr, ClassAd)> = machines;
        let mut matched = 0u64;
        for (schedd, job, job_ad) in jobs {
            let mut best: Option<(usize, f64)> = None;
            for (i, (_, _, machine_ad)) in free.iter().enumerate() {
                if symmetric_match(&job_ad, machine_ad) {
                    let r = rank(&job_ad, machine_ad);
                    if best.is_none_or(|(_, br)| r > br) {
                        best = Some((i, r));
                    }
                }
            }
            if let Some((i, _)) = best {
                let (name, startd, machine_ad) = free.remove(i);
                matched += 1;
                ctx.trace("negotiator.match", format!("{job} -> {name}"));
                ctx.send(
                    schedd,
                    MatchNotify {
                        job,
                        startd,
                        machine_ad,
                    },
                );
            }
        }
        ctx.metrics().incr("negotiator.matches", matched);
    }
}

impl Component for Negotiator {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.start_cycle(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_CYCLE {
            // If the previous cycle is still mid-negotiation (a schedd
            // never answered — crashed or partitioned), close it out first.
            if matches!(self.phase, Phase::Negotiating { .. }) {
                self.finish_cycle(ctx);
            }
            self.start_cycle(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if msg.is::<CollectorAds>() {
            let ads = msg.downcast::<CollectorAds>().expect("checked");
            if let Phase::Collecting {
                machines,
                submitters,
            } = &mut self.phase
            {
                match ads.request_id {
                    REQ_MACHINES => *machines = Some(ads.ads),
                    REQ_SUBMITTERS => *submitters = Some(ads.ads),
                    _ => {}
                }
                self.maybe_negotiate(ctx);
            }
            return;
        }
        if let Ok(idle) = msg.downcast::<IdleJobs>() {
            if idle.cycle != self.cycle {
                return; // stale answer from a previous cycle
            }
            if let Phase::Negotiating {
                outstanding, jobs, ..
            } = &mut self.phase
            {
                for (id, ad) in idle.jobs {
                    jobs.push((from, id, ad));
                }
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.finish_cycle(ctx);
                }
            }
        }
    }
}
