//! The Scheduler daemon: the user's single access point (Figure 1).
//!
//! It owns the persistent job queue, answers the user API, routes grid-
//! universe jobs to the per-user [`crate::GridManager`] ("The Scheduler
//! responds to a user request to submit jobs destined to run on Grid
//! resources by creating a new GridManager daemon") and pool-universe jobs
//! to the personal Condor schedd (the GlideIn path), writes the user log,
//! and sends termination e-mails.

use crate::api::{GridJobId, GridJobSpec, JobStatus, Universe, UserCmd, UserEvent};
use crate::broker::Broker;
use crate::email::Email;
use crate::gridmanager::{GmCmd, GmConfig, GmUpdate, GridManager};
use classads::ClassAd;
use condor::{PoolJobEvent, PoolJobState, PoolRemove, PoolSubmit, PoolSubmitted};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::ProxyCredential;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static configuration of a Scheduler.
pub struct SchedulerConfig {
    /// The user this agent serves.
    pub user: String,
    /// The user's proxy credential.
    pub credential: ProxyCredential,
    /// The submit machine's GASS server (stages executables/stdio).
    pub gass: Addr,
    /// Personal Condor schedd for pool-universe jobs (GlideIn path).
    pub pool_schedd: Option<Addr>,
    /// Mail spool for notifications.
    pub mailer: Option<Addr>,
    /// Where to push user events (the user's console component).
    pub user_addr: Option<Addr>,
    /// GridManager tuning.
    pub gm: GmConfig,
    /// Send an e-mail on every terminal job state.
    pub email_on_termination: bool,
    /// Campaign (lean) mode: terminal jobs retire out of the queue into an
    /// append-only completed log and their persistent records are
    /// reclaimed, so memory tracks *live* jobs rather than total submitted.
    /// Trades away `Query`/`GetLog` history for finished jobs.
    pub lean: bool,
}

/// One entry of the lean-mode completed log: fixed-size, no strings.
#[derive(Clone, Copy, Debug)]
pub struct CompletedJob {
    /// The job.
    pub job: GridJobId,
    /// When it reached its terminal state.
    pub at: SimTime,
    /// The terminal state it reached.
    pub outcome: Outcome,
}

/// Terminal outcome classes (compact form of [`JobStatus`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Exited cleanly.
    Done,
    /// Failed for good.
    Failed,
    /// Cancelled.
    Removed,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct JobRec {
    spec: GridJobSpec,
    status: JobStatus,
    submitted_at: SimTime,
    seen_active: bool,
}

/// The Scheduler component.
pub struct Scheduler {
    config: SchedulerConfig,
    broker: Option<Box<dyn Broker>>,
    jobs: BTreeMap<GridJobId, JobRec>,
    /// pool JobId -> grid job id (pool-universe correlation).
    pool_map: BTreeMap<u64, GridJobId>,
    next_id: u64,
    log: Vec<(SimTime, GridJobId, String)>,
    /// Lean mode: terminal jobs move here (24 bytes each, append-only)
    /// instead of lingering in `jobs` with their spec strings.
    completed: Vec<CompletedJob>,
    gridmanager: Option<Addr>,
    /// True when this instance was rebuilt from stable storage.
    recovered: bool,
}

impl Scheduler {
    /// A fresh Scheduler. `broker` decides where grid-universe jobs go.
    pub fn new(config: SchedulerConfig, broker: Box<dyn Broker>) -> Scheduler {
        Scheduler {
            config,
            broker: Some(broker),
            jobs: BTreeMap::new(),
            pool_map: BTreeMap::new(),
            next_id: 0,
            log: Vec::new(),
            completed: Vec::new(),
            gridmanager: None,
            recovered: false,
        }
    }

    /// Rebuild from the persistent queue after a submit-machine crash
    /// (§4.2: "When restarted, the GridManager reads the information and
    /// reconnects...").
    pub fn recover(
        config: SchedulerConfig,
        broker: Box<dyn Broker>,
        store: &gridsim::store::StableStore,
        node: NodeId,
    ) -> Scheduler {
        let mut s = Scheduler::new(config, broker);
        s.recovered = true;
        let prefix = s.job_key_prefix();
        for key in store.keys_with_prefix(node, &prefix) {
            let Some((id, rec)) = store.get::<(u64, JobRec)>(node, &key) else {
                continue;
            };
            s.next_id = s.next_id.max(id + 1);
            s.jobs.insert(GridJobId(id), rec);
        }
        // The log is persisted in fixed-size chunks (appending to one big
        // value would make every event O(total log)).
        type LogChunk = Vec<(u64, u64, String)>;
        let log_prefix = format!("condor_g/{}/log/", s.config.user);
        let mut chunks: Vec<(u64, LogChunk)> = store
            .keys_with_prefix(node, &log_prefix)
            .into_iter()
            .filter_map(|key| {
                let idx: u64 = key[log_prefix.len()..].parse().ok()?;
                Some((idx, store.get(node, &key)?))
            })
            .collect();
        chunks.sort_by_key(|&(i, _)| i);
        for (_, chunk) in chunks {
            s.log.extend(
                chunk
                    .into_iter()
                    .map(|(t, j, m)| (SimTime(t), GridJobId(j), m)),
            );
        }
        let pm_prefix = format!("condor_g/{}/pm/", s.config.user);
        for key in store.keys_with_prefix(node, &pm_prefix) {
            if let (Ok(pool_id), Some(grid)) = (
                key[pm_prefix.len()..].parse::<u64>(),
                store.get::<u64>(node, &key),
            ) {
                s.pool_map.insert(pool_id, GridJobId(grid));
            }
        }
        s
    }

    fn job_key_prefix(&self) -> String {
        format!("condor_g/{}/job/", self.config.user)
    }

    /// Persist one job record (O(1) per event).
    fn persist_job(&self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let Some(rec) = self.jobs.get(&job) else {
            return;
        };
        let key = format!("{}{:012}", self.job_key_prefix(), job.0);
        let node = ctx.node();
        ctx.store().put(node, &key, &(job.0, rec.clone()));
        let next = self.next_id;
        let nk = format!("condor_g/{}/next_id", self.config.user);
        ctx.store().put(node, &nk, &next);
    }

    fn persist_pool_entry(&self, ctx: &mut Ctx<'_>, pool_id: u64, grid: GridJobId) {
        let key = format!("condor_g/{}/pm/{pool_id}", self.config.user);
        let node = ctx.node();
        ctx.store().put(node, &key, &grid.0);
    }

    /// Entries per persisted log chunk.
    const LOG_CHUNK: usize = 64;

    fn log_event(&mut self, ctx: &mut Ctx<'_>, job: GridJobId, message: String) {
        ctx.trace("condor_g.log", format!("{job}: {message}"));
        if self.config.lean {
            // Campaign mode: the durable user log is the trace stream; keep
            // only a bounded recent window in memory for GetLog, and skip
            // the per-event chunk rewrite entirely.
            self.log.push((ctx.now(), job, message));
            if self.log.len() >= 2 * Self::LOG_CHUNK {
                self.log.drain(..Self::LOG_CHUNK);
            }
            return;
        }
        self.log.push((ctx.now(), job, message));
        // Rewrite only the current (last, partial) chunk.
        let chunk_idx = (self.log.len() - 1) / Self::LOG_CHUNK;
        let start = chunk_idx * Self::LOG_CHUNK;
        let chunk: Vec<(u64, u64, String)> = self.log[start..]
            .iter()
            .map(|(t, j, m)| (t.micros(), j.0, m.clone()))
            .collect();
        let key = format!("condor_g/{}/log/{chunk_idx}", self.config.user);
        let node = ctx.node();
        ctx.store().put(node, &key, &chunk);
    }

    fn push_status(&mut self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let Some(rec) = self.jobs.get(&job) else {
            return;
        };
        let status = rec.status.clone();
        let name = rec.spec.name.clone();
        if let Some(user) = self.config.user_addr {
            ctx.send(
                user,
                UserEvent::Status {
                    job,
                    status: status.clone(),
                    at: ctx.now(),
                },
            );
        }
        if status.is_terminal() && self.config.email_on_termination {
            if let Some(mailer) = self.config.mailer {
                ctx.send(
                    mailer,
                    Email {
                        to: self.config.user.clone(),
                        subject: format!("[condor-g] {name} ({job}) {status:?}"),
                        body: format!("job {job} reached {status:?}"),
                    },
                );
            }
        }
    }

    fn ensure_gridmanager(&mut self, ctx: &mut Ctx<'_>) -> Addr {
        if let Some(gm) = self.gridmanager {
            return gm;
        }
        // "creating a new GridManager daemon... One GridManager process
        // handles all jobs for a single user."
        let broker = self
            .broker
            .take()
            .expect("broker available for a new GridManager");
        let gm = GridManager::new(
            self.config.gm.clone(),
            self.config.credential.clone(),
            ctx.self_addr(),
            self.config.gass,
            broker,
            self.recovered,
        );
        let node = ctx.node();
        let addr = ctx.spawn(node, "gridmanager", gm);
        ctx.metrics().incr("condor_g.gridmanagers_spawned", 1);
        self.gridmanager = Some(addr);
        addr
    }

    fn route_submit(&mut self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let rec = self.jobs.get(&job).expect("routed job exists").clone();
        match rec.spec.universe {
            Universe::Grid => {
                let gm = self.ensure_gridmanager(ctx);
                ctx.send_local(
                    gm,
                    GmCmd::Manage {
                        job,
                        spec: rec.spec,
                    },
                );
            }
            Universe::Pool => {
                let Some(schedd) = self.config.pool_schedd else {
                    self.jobs.get_mut(&job).unwrap().status =
                        JobStatus::Failed("no personal pool configured".into());
                    self.log_event(ctx, job, "no pool schedd; job failed".into());
                    self.persist_job(ctx, job);
                    self.push_status(ctx, job);
                    return;
                };
                let mut ad = ClassAd::new()
                    .with("Owner", self.config.user.as_str())
                    .with("Cmd", rec.spec.executable.as_str())
                    .with("TotalWork", rec.spec.runtime.as_secs_f64())
                    .with("IoBytes", rec.spec.io_bytes as i64);
                if let Some(io) = rec.spec.io_interval_secs {
                    ad.set("IoIntervalSecs", io);
                }
                if let Some(req) = &rec.spec.requirements {
                    ad.set_parsed("Requirements", req).ok();
                } else if let Some(arch) = &rec.spec.required_arch {
                    // A binary's architecture constrains matchmaking even
                    // when the user wrote no explicit Requirements.
                    ad.set_parsed("Requirements", &format!("TARGET.Arch == \"{arch}\""))
                        .ok();
                }
                if let Some(rank) = &rec.spec.rank {
                    ad.set_parsed("Rank", rank).ok();
                }
                ctx.send_local(
                    schedd,
                    PoolSubmit {
                        client_id: job.0,
                        ad,
                    },
                );
            }
        }
    }

    fn set_status(&mut self, ctx: &mut Ctx<'_>, job: GridJobId, status: JobStatus) {
        let now = ctx.now();
        let Some(rec) = self.jobs.get_mut(&job) else {
            return;
        };
        if rec.status == status {
            return;
        }
        rec.status = status.clone();
        // Queueing-delay accounting: first time the job actually executes.
        if status == JobStatus::Active && !rec.seen_active {
            rec.seen_active = true;
            let wait = now - rec.submitted_at;
            ctx.metrics().observe_duration("condor_g.active_wait", wait);
        }
        if status == JobStatus::Done {
            ctx.metrics()
                .gauge_delta("condor_g.done_over_time", now, 1.0);
        }
        self.log_event(ctx, job, format!("status -> {status:?}"));
        self.persist_job(ctx, job);
        self.push_status(ctx, job);
        if status.is_terminal() {
            ctx.metrics().incr(
                match status {
                    JobStatus::Done => "condor_g.jobs_done",
                    JobStatus::Removed => "condor_g.jobs_removed",
                    _ => "condor_g.jobs_failed",
                },
                1,
            );
            if self.config.lean {
                self.retire(ctx, job, &status);
            }
        }
    }

    /// Lean mode: move a terminal job out of the queue into the compact
    /// completed log and reclaim its persistent record.
    fn retire(&mut self, ctx: &mut Ctx<'_>, job: GridJobId, status: &JobStatus) {
        if self.jobs.remove(&job).is_none() {
            return;
        }
        let outcome = match status {
            JobStatus::Done => Outcome::Done,
            JobStatus::Removed => Outcome::Removed,
            _ => Outcome::Failed,
        };
        self.completed.push(CompletedJob {
            job,
            at: ctx.now(),
            outcome,
        });
        let key = format!("{}{:012}", self.job_key_prefix(), job.0);
        let node = ctx.node();
        ctx.store().remove(node, &key);
        // Pool-universe correlation entries die with the job too.
        if let Some((pool_id, _)) = self.pool_map.iter().find(|(_, g)| **g == job) {
            let pool_id = *pool_id;
            self.pool_map.remove(&pool_id);
            let pk = format!("condor_g/{}/pm/{pool_id}", self.config.user);
            ctx.store().remove(node, &pk);
        }
    }

    /// The lean-mode completed log (empty unless `lean`).
    pub fn completed_log(&self) -> &[CompletedJob] {
        &self.completed
    }
}

impl Component for Scheduler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.recovered {
            // Re-manage every non-terminal grid job; resubmit pool jobs
            // (the pool schedd has its own persistent queue and recovery —
            // here we only re-establish our notification mapping).
            let pending: Vec<GridJobId> = self
                .jobs
                .iter()
                .filter(|(_, r)| !r.status.is_terminal())
                .map(|(id, _)| *id)
                .collect();
            ctx.metrics().incr("condor_g.recoveries", 1);
            for job in pending {
                self.log_event(ctx, job, "recovered from persistent queue".into());
                if self.jobs[&job].spec.universe == Universe::Grid {
                    let gm = self.ensure_gridmanager(ctx);
                    let spec = self.jobs[&job].spec.clone();
                    ctx.send_local(gm, GmCmd::Recover { job, spec });
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(cmd) = msg.downcast_ref::<UserCmd>() {
            match cmd {
                UserCmd::Submit { id, spec } => {
                    let job = GridJobId(self.next_id);
                    self.next_id += 1;
                    // Remember the user's console for callbacks.
                    if self.config.user_addr.is_none() {
                        self.config.user_addr = Some(from);
                    }
                    ctx.metrics().incr("condor_g.submitted", 1);
                    self.jobs.insert(
                        job,
                        JobRec {
                            spec: spec.clone(),
                            status: JobStatus::Unsubmitted,
                            submitted_at: ctx.now(),
                            seen_active: false,
                        },
                    );
                    self.log_event(ctx, job, format!("submitted ({})", spec.name));
                    self.persist_job(ctx, job);
                    ctx.send(from, UserEvent::Submitted { id: *id, job });
                    self.route_submit(ctx, job);
                }
                UserCmd::Query { job } => {
                    let status = self
                        .jobs
                        .get(job)
                        .map(|r| r.status.clone())
                        .unwrap_or(JobStatus::Failed("unknown job".into()));
                    ctx.send(
                        from,
                        UserEvent::Status {
                            job: *job,
                            status,
                            at: ctx.now(),
                        },
                    );
                }
                UserCmd::Cancel { job } => {
                    let Some(rec) = self.jobs.get(job) else {
                        return;
                    };
                    match rec.spec.universe {
                        Universe::Grid => {
                            if let Some(gm) = self.gridmanager {
                                ctx.send_local(gm, GmCmd::Cancel { job: *job });
                            } else {
                                self.set_status(ctx, *job, JobStatus::Removed);
                            }
                        }
                        Universe::Pool => {
                            if let Some(schedd) = self.config.pool_schedd {
                                if let Some((pool_id, _)) =
                                    self.pool_map.iter().find(|(_, g)| **g == *job)
                                {
                                    ctx.send_local(
                                        schedd,
                                        PoolRemove {
                                            job: condor::JobId(*pool_id),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                UserCmd::GetLog => {
                    ctx.send(
                        from,
                        UserEvent::Log {
                            entries: self.log.clone(),
                        },
                    );
                }
                UserCmd::RefreshProxy { credential } => {
                    self.config.credential = credential.clone();
                    ctx.metrics().incr("condor_g.proxy_refreshes", 1);
                    if let Some(gm) = self.gridmanager {
                        ctx.send_local(
                            gm,
                            GmCmd::RefreshProxy {
                                credential: credential.clone(),
                            },
                        );
                    }
                }
            }
            return;
        }
        if let Some(update) = msg.downcast_ref::<GmUpdate>() {
            self.set_status(ctx, update.job, update.status.clone());
            return;
        }
        if msg.is::<crate::gridmanager::GmExiting>() {
            // "terminates once all jobs are complete" — the broker comes
            // home so a future GridManager can inherit it.
            if let Ok(exiting) = msg.downcast::<crate::gridmanager::GmExiting>() {
                self.broker = Some(exiting.broker);
            }
            self.gridmanager = None;
            return;
        }
        // Pool-universe plumbing.
        if let Some(sub) = msg.downcast_ref::<PoolSubmitted>() {
            let grid_job = GridJobId(sub.client_id);
            self.pool_map.insert(sub.job.0, grid_job);
            self.persist_pool_entry(ctx, sub.job.0, grid_job);
            return;
        }
        if let Some(ev) = msg.downcast_ref::<PoolJobEvent>() {
            let Some(&job) = self.pool_map.get(&ev.job.0) else {
                return;
            };
            let status = match ev.state {
                PoolJobState::Idle => JobStatus::Pending,
                PoolJobState::Running => JobStatus::Active,
                PoolJobState::Completed => JobStatus::Done,
                PoolJobState::Removed => JobStatus::Removed,
                PoolJobState::Held => JobStatus::Held("held by pool schedd".into()),
            };
            self.set_status(ctx, job, status);
        }
    }
}
