//! The GlideIn mechanism (paper §5).
//!
//! "The GlideIn mechanism uses Grid protocols to dynamically create a
//! personal Condor pool out of Grid resources by gliding-in Condor daemons
//! to the remote resource." The factory below submits, through plain GRAM,
//! jobs whose payload is a Condor startd; when a glidein job starts
//! executing, a [`condor::Startd`] appears at the site, configured with
//! the allocation's lease and an idle timeout ("thus guarding against
//! runaway daemons") and advertising to the *user's personal collector*.
//! From then on, ordinary matchmaking binds user jobs to glideins at the
//! moment resources actually become available — the late binding that
//! "minimizes queuing delays by preventing a job from waiting at one
//! remote resource while another resource capable of serving the job is
//! available".
//!
//! Modelling note (see DESIGN.md): the real glidein bootstrap is a shell
//! script that GridFTPs Condor binaries from a central repository. Here
//! the factory spawns the `Startd` component onto the site's cluster node
//! when GRAM reports the glidein job Active, and tears it down when the
//! allocation ends; the binary-fetch cost is charged as the glidein job's
//! stage-in (`imagesize`).

use classads::ClassAd;
use condor::Startd;
use gass::GassUrl;
use gram::proto::{GramJobState, GramReply, JmMsg, JobContact};
use gram::{RslSpec, SubmitSession};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::ProxyCredential;

/// A site the factory keeps glideins at.
#[derive(Clone, Debug)]
pub struct GlideinSite {
    /// Site name (for ads and logs).
    pub site: String,
    /// The site's gatekeeper.
    pub gatekeeper: Addr,
    /// The node glidein startds materialize on (the site's cluster).
    pub cluster_node: NodeId,
    /// How many glideins to keep alive here.
    pub target: u32,
    /// Allocation length requested per glidein.
    pub lease: Duration,
    /// Machine attributes glideins advertise (Arch, OpSys, ...).
    pub machine_ad: ClassAd,
}

enum SlotPhase {
    Submitting(SubmitSession, SimTime),
    /// Committed; waiting for the allocation to start. Keeps the session
    /// so an unacknowledged commit can be retransmitted.
    Waiting(JobContact, SubmitSession),
    Running {
        contact: JobContact,
        startd: Addr,
    },
    Dead,
}

struct Slot {
    site_idx: usize,
    phase: SlotPhase,
    seq: u64,
}

const TAG_TICK: u64 = 1;

/// Keeps `target` glideins alive at each configured site.
pub struct GlideinFactory {
    sites: Vec<GlideinSite>,
    /// The user's personal collector.
    collector: Addr,
    credential: ProxyCredential,
    /// The submit machine's GASS server (glidein stdout sink, unused here
    /// but part of the GRAM request).
    gass: Addr,
    /// Glidein daemons exit if unclaimed this long.
    idle_timeout: Duration,
    /// Checkpoint interval for jobs running on glideins.
    ckpt_interval: Option<Duration>,
    /// Checkpoint server copies (in addition to the shadow).
    ckpt_server: Option<Addr>,
    slots: Vec<Slot>,
    next_seq: u64,
    next_glidein: u64,
    tick: Duration,
}

impl GlideinFactory {
    /// A factory for `sites`, populating the personal pool at `collector`.
    pub fn new(
        sites: Vec<GlideinSite>,
        collector: Addr,
        credential: ProxyCredential,
        gass: Addr,
    ) -> GlideinFactory {
        GlideinFactory {
            sites,
            collector,
            credential,
            gass,
            idle_timeout: Duration::from_mins(20),
            ckpt_interval: Some(Duration::from_mins(10)),
            ckpt_server: None,
            slots: Vec::new(),
            next_seq: 0,
            next_glidein: 0,
            tick: Duration::from_mins(1),
        }
    }

    /// Set the glidein idle timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> GlideinFactory {
        self.idle_timeout = t;
        self
    }

    /// Set the checkpoint interval for glidein startds.
    pub fn with_ckpt_interval(mut self, t: Option<Duration>) -> GlideinFactory {
        self.ckpt_interval = t;
        self
    }

    /// Also ship checkpoints to a checkpoint server (paper §5).
    pub fn with_ckpt_server(mut self, server: Addr) -> GlideinFactory {
        self.ckpt_server = Some(server);
        self
    }

    fn live_at(&self, site_idx: usize) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.site_idx == site_idx && !matches!(s.phase, SlotPhase::Dead))
            .count() as u32
    }

    fn submit_glidein(&mut self, ctx: &mut Ctx<'_>, site_idx: usize) {
        let site = self.sites[site_idx].clone();
        let seq = self.next_seq;
        self.next_seq += 1;
        // "Our implementation of this GlideIn capability submits an initial
        // GlideIn executable (a portable shell script)": a plain site-local
        // path, so no GASS staging is needed; the lease is the requested
        // wall time.
        let rsl = RslSpec::job("/glidein/glidein_startup.sh", site.lease)
            .with_max_wall_minutes(site.lease.micros() / 60_000_000 + 1);
        let me = ctx.self_addr();
        let mut session = SubmitSession::new(
            seq,
            rsl.to_string(),
            self.credential.clone(),
            me,
            GassUrl::gass(self.gass, ""),
        );
        ctx.metrics().incr("glidein.submitted", 1);
        ctx.trace("glidein.submit", format!("-> {}", site.site));
        ctx.send(site.gatekeeper, session.request());
        self.slots.push(Slot {
            site_idx,
            phase: SlotPhase::Submitting(session, ctx.now()),
            seq,
        });
    }

    fn spawn_startd(&mut self, ctx: &mut Ctx<'_>, slot_idx: usize) {
        let site = self.sites[self.slots[slot_idx].site_idx].clone();
        self.next_glidein += 1;
        let name = format!("glidein-{}-{}", site.site, self.next_glidein);
        let mut ad = site.machine_ad.clone();
        ad.set("Glidein", true);
        ad.set("GlideinSite", site.site.as_str());
        let mut startd = Startd::new(&name, ad, self.collector)
            .with_lease(site.lease)
            .with_idle_timeout(self.idle_timeout)
            .with_ckpt_interval(self.ckpt_interval);
        if let Some(server) = self.ckpt_server {
            startd = startd.with_ckpt_server(server);
        }
        let addr = ctx.spawn(site.cluster_node, &name, startd);
        ctx.metrics().incr("glidein.started", 1);
        let now = ctx.now();
        ctx.metrics().gauge_delta("glidein.active", now, 1.0);
        let slot = &mut self.slots[slot_idx];
        let contact = match &slot.phase {
            SlotPhase::Waiting(c, _) => *c,
            SlotPhase::Running { contact: c, .. } => *c,
            _ => JobContact(u64::MAX),
        };
        slot.phase = SlotPhase::Running {
            contact,
            startd: addr,
        };
    }

    fn slot_dead(&mut self, ctx: &mut Ctx<'_>, slot_idx: usize) {
        let slot = &mut self.slots[slot_idx];
        if let SlotPhase::Running { startd, .. } = slot.phase {
            // The daemon usually exits on its own at lease end; kill covers
            // early revocation (startd::on_stop vacates gracefully).
            ctx.kill(startd);
            let now = ctx.now();
            ctx.metrics().gauge_delta("glidein.active", now, -1.0);
        }
        if !matches!(slot.phase, SlotPhase::Dead) {
            ctx.metrics().incr("glidein.ended", 1);
        }
        slot.phase = SlotPhase::Dead;
    }
}

impl Component for GlideinFactory {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.sites.len() {
            for _ in 0..self.sites[i].target {
                self.submit_glidein(ctx, i);
            }
        }
        ctx.set_timer(self.tick, TAG_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag != TAG_TICK {
            return;
        }
        let now = ctx.now();
        // Retransmit stuck submissions and unacknowledged commits.
        for i in 0..self.slots.len() {
            match &mut self.slots[i].phase {
                SlotPhase::Submitting(session, last)
                    if session.awaiting_reply() && now - *last >= Duration::from_secs(30) =>
                {
                    let req = session.request();
                    *last = now;
                    let gk = self.sites[self.slots[i].site_idx].gatekeeper;
                    ctx.send(gk, req);
                }
                SlotPhase::Waiting(_, session) => {
                    if let Some((jm, msg)) = session.commit_retry() {
                        ctx.send(jm, msg);
                    }
                }
                _ => {}
            }
        }
        // Top up each site to its target.
        for i in 0..self.sites.len() {
            let missing = self.sites[i].target.saturating_sub(self.live_at(i));
            for _ in 0..missing {
                self.submit_glidein(ctx, i);
            }
        }
        ctx.set_timer(self.tick, TAG_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            match reply {
                GramReply::Submitted {
                    seq,
                    contact,
                    jobmanager,
                } => {
                    let Some(idx) = self.slots.iter().position(|s| s.seq == *seq) else {
                        return;
                    };
                    if let SlotPhase::Submitting(session, _) = &mut self.slots[idx].phase {
                        use gram::client::SubmitAction;
                        if let SubmitAction::SendCommit { jobmanager, .. } = session.on_reply(reply)
                        {
                            ctx.send(jobmanager, JmMsg::Commit);
                            let session = session.clone();
                            self.slots[idx].phase = SlotPhase::Waiting(*contact, session);
                        }
                    }
                    let _ = jobmanager;
                }
                GramReply::SubmitFailed { seq, .. } => {
                    if let Some(idx) = self.slots.iter().position(|s| s.seq == *seq) {
                        self.slot_dead(ctx, idx);
                    }
                }
                _ => {}
            }
            return;
        }
        if let Some(JmMsg::CommitAck { contact }) = msg.downcast_ref::<JmMsg>() {
            for slot in &mut self.slots {
                if let SlotPhase::Waiting(c, session) = &mut slot.phase {
                    if c == contact {
                        session.on_commit_ack();
                    }
                }
            }
            return;
        }
        if let Some(JmMsg::Callback { contact, state, .. }) = msg.downcast_ref::<JmMsg>() {
            let Some(idx) = self.slots.iter().position(|s| match &s.phase {
                SlotPhase::Waiting(c, _) => c == contact,
                SlotPhase::Running { contact: c, .. } => c == contact,
                _ => false,
            }) else {
                return;
            };
            match state {
                GramJobState::Active => {
                    if matches!(self.slots[idx].phase, SlotPhase::Waiting(..)) {
                        // The allocation arrived: the daemon comes up.
                        self.spawn_startd(ctx, idx);
                    }
                }
                GramJobState::Pending => {
                    // The site vacated-and-requeued the allocation: the
                    // daemon died with it; wait for the next Active.
                    if let SlotPhase::Running { contact, startd } = self.slots[idx].phase {
                        ctx.kill(startd);
                        let now = ctx.now();
                        ctx.metrics().gauge_delta("glidein.active", now, -1.0);
                        ctx.metrics().incr("glidein.revoked", 1);
                        // Already committed long ago: keep an inert,
                        // acknowledged session so nothing retransmits.
                        let session = SubmitSession::acknowledged(
                            self.slots[idx].seq,
                            contact,
                            self.credential.clone(),
                            ctx.self_addr(),
                            GassUrl::gass(self.gass, ""),
                        );
                        self.slots[idx].phase = SlotPhase::Waiting(contact, session);
                    }
                }
                s if s.is_terminal() => {
                    // Allocation over (lease ran out, vacated, failed):
                    // tear the slot down; the next tick tops the site up.
                    self.slot_dead(ctx, idx);
                }
                _ => {}
            }
        }
    }
}
