//! DAGMan: inter-job dependencies.
//!
//! The CMS experience (paper §6) is driven by DAGs at two levels: "a
//! two-node Directed Acyclic Graph of jobs submitted to a Condor-G agent
//! at Caltech triggers 100 simulation jobs... The execution of these jobs
//! is also controlled by a DAG that makes sure that local disk buffers do
//! not overflow". This module provides the DAG description (with a parser
//! for the classic DAGMan text format), validation, and a component that
//! walks the graph through the Scheduler's user API with per-node retries
//! and a max-active throttle.

use crate::api::{GridJobId, GridJobSpec, JobStatus, Universe, UserCmd, UserEvent};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::BTreeMap;
use std::fmt;

/// One DAG node.
#[derive(Clone, Debug)]
pub struct DagNode {
    /// Unique node name.
    pub name: String,
    /// The job to run.
    pub spec: GridJobSpec,
    /// Resubmissions allowed after failures.
    pub retries: u32,
}

/// A DAG description.
#[derive(Clone, Debug, Default)]
pub struct DagSpec {
    /// Nodes, indexed by position.
    pub nodes: Vec<DagNode>,
    /// `(parent, child)` index pairs.
    pub edges: Vec<(usize, usize)>,
    /// Maximum concurrently submitted nodes (0 = unlimited). The CMS DAG
    /// uses this to keep disk buffers from overflowing.
    pub max_active: usize,
}

/// DAG validation/parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagError(pub String);

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DAG error: {}", self.0)
    }
}

impl std::error::Error for DagError {}

impl DagSpec {
    /// An empty DAG.
    pub fn new() -> DagSpec {
        DagSpec::default()
    }

    /// Add a node; returns its index.
    pub fn add(&mut self, name: &str, spec: GridJobSpec) -> usize {
        self.nodes.push(DagNode {
            name: name.to_string(),
            spec,
            retries: 0,
        });
        self.nodes.len() - 1
    }

    /// Declare `child` dependent on `parent`.
    pub fn edge(&mut self, parent: usize, child: usize) {
        self.edges.push((parent, child));
    }

    /// Index of a node by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Validate: known indices, no self-edges, acyclic.
    pub fn validate(&self) -> Result<(), DagError> {
        let n = self.nodes.len();
        for &(p, c) in &self.edges {
            if p >= n || c >= n {
                return Err(DagError(format!("edge ({p},{c}) out of range")));
            }
            if p == c {
                return Err(DagError(format!("self-edge on node {p}")));
            }
        }
        // Kahn's algorithm: all nodes must be orderable.
        let mut indegree = vec![0usize; n];
        for &(_, c) in &self.edges {
            indegree[c] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = ready.pop() {
            seen += 1;
            for &(p, c) in &self.edges {
                if p == u {
                    indegree[c] -= 1;
                    if indegree[c] == 0 {
                        ready.push(c);
                    }
                }
            }
        }
        if seen != n {
            return Err(DagError("cycle detected".into()));
        }
        Ok(())
    }

    /// Parse the classic DAGMan-style text format.
    ///
    /// ```
    /// let dag = condor_g::DagSpec::parse(
    ///     "JOB sim1 runtime=3600 stdout=1048576\n\
    ///      JOB recon runtime=7200 count=4\n\
    ///      PARENT sim1 CHILD recon\n\
    ///      RETRY sim1 3\n\
    ///      MAXACTIVE 20",
    /// ).unwrap();
    /// assert_eq!(dag.nodes.len(), 2);
    /// assert_eq!(dag.edges, vec![(0, 1)]);
    /// assert_eq!(dag.max_active, 20);
    /// ```
    pub fn parse(text: &str) -> Result<DagSpec, DagError> {
        let mut dag = DagSpec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let keyword = words.next().unwrap().to_ascii_uppercase();
            let err = |m: String| DagError(format!("line {}: {m}", lineno + 1));
            match keyword.as_str() {
                "JOB" => {
                    let name = words.next().ok_or_else(|| err("JOB needs a name".into()))?;
                    if dag.index_of(name).is_some() {
                        return Err(err(format!("duplicate node {name}")));
                    }
                    let mut spec = GridJobSpec::grid(name, "/bin/job", Duration::from_secs(60));
                    for opt in words {
                        let (k, v) = opt
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad option {opt}")))?;
                        match k {
                            "runtime" => {
                                spec.runtime = Duration::from_secs(
                                    v.parse().map_err(|_| err("bad runtime".into()))?,
                                )
                            }
                            "exe" => spec.executable = v.to_string(),
                            "stdout" => {
                                spec.stdout_size =
                                    v.parse().map_err(|_| err("bad stdout".into()))?
                            }
                            "count" => {
                                spec.count = v.parse().map_err(|_| err("bad count".into()))?
                            }
                            "universe" => {
                                spec.universe = match v {
                                    "grid" => Universe::Grid,
                                    "pool" => Universe::Pool,
                                    other => return Err(err(format!("bad universe {other}"))),
                                }
                            }
                            other => return Err(err(format!("unknown option {other}"))),
                        }
                    }
                    dag.add(name, spec);
                }
                "PARENT" => {
                    // PARENT a b CHILD c d
                    let rest: Vec<&str> = words.collect();
                    let split = rest
                        .iter()
                        .position(|w| w.eq_ignore_ascii_case("CHILD"))
                        .ok_or_else(|| err("PARENT without CHILD".into()))?;
                    let (parents, children) = rest.split_at(split);
                    let children = &children[1..];
                    if parents.is_empty() || children.is_empty() {
                        return Err(err("PARENT/CHILD lists must be non-empty".into()));
                    }
                    for p in parents {
                        let pi = dag
                            .index_of(p)
                            .ok_or_else(|| err(format!("unknown node {p}")))?;
                        for c in children {
                            let ci = dag
                                .index_of(c)
                                .ok_or_else(|| err(format!("unknown node {c}")))?;
                            dag.edge(pi, ci);
                        }
                    }
                }
                "RETRY" => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("RETRY needs a name".into()))?;
                    let n: u32 = words
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("RETRY needs a count".into()))?;
                    let idx = dag
                        .index_of(name)
                        .ok_or_else(|| err(format!("unknown node {name}")))?;
                    dag.nodes[idx].retries = n;
                }
                "MAXACTIVE" => {
                    dag.max_active = words
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("MAXACTIVE needs a number".into()))?;
                }
                other => return Err(err(format!("unknown keyword {other}"))),
            }
        }
        dag.validate()?;
        Ok(dag)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum NodeState {
    Waiting,
    Ready,
    Submitted,
    Done,
    Failed,
}

const TAG_KICK: u64 = 1;

/// The DAG execution component: submits nodes to a Scheduler as their
/// parents complete, with retries and the max-active throttle.
pub struct DagMan {
    dag: DagSpec,
    scheduler: Addr,
    states: Vec<NodeState>,
    attempts: Vec<u32>,
    /// submission correlation id -> node index.
    pending_ids: BTreeMap<u64, usize>,
    /// grid job id -> node index.
    job_map: BTreeMap<GridJobId, usize>,
    next_cmd: u64,
    active: usize,
    finished: bool,
}

impl DagMan {
    /// Run `dag` through the scheduler at `scheduler`. Validate the DAG
    /// first — this panics on invalid input (construction-time error).
    pub fn new(dag: DagSpec, scheduler: Addr) -> DagMan {
        dag.validate().expect("valid DAG");
        let n = dag.nodes.len();
        DagMan {
            dag,
            scheduler,
            states: vec![NodeState::Waiting; n],
            attempts: vec![0; n],
            pending_ids: BTreeMap::new(),
            job_map: BTreeMap::new(),
            next_cmd: 0,
            active: 0,
            finished: false,
        }
    }

    fn parents_done(&self, node: usize) -> bool {
        self.dag
            .edges
            .iter()
            .filter(|&&(_, c)| c == node)
            .all(|&(p, _)| self.states[p] == NodeState::Done)
    }

    fn refresh_ready(&mut self) {
        for i in 0..self.states.len() {
            if self.states[i] == NodeState::Waiting && self.parents_done(i) {
                self.states[i] = NodeState::Ready;
            }
        }
    }

    fn submit_ready(&mut self, ctx: &mut Ctx<'_>) {
        self.refresh_ready();
        for i in 0..self.states.len() {
            if self.states[i] != NodeState::Ready {
                continue;
            }
            if self.dag.max_active > 0 && self.active >= self.dag.max_active {
                break;
            }
            self.next_cmd += 1;
            self.pending_ids.insert(self.next_cmd, i);
            self.states[i] = NodeState::Submitted;
            self.active += 1;
            ctx.metrics().incr("dag.submitted", 1);
            ctx.send(
                self.scheduler,
                UserCmd::Submit {
                    id: self.next_cmd,
                    spec: self.dag.nodes[i].spec.clone(),
                },
            );
        }
        self.persist(ctx);
        self.check_finished(ctx);
    }

    fn check_finished(&mut self, ctx: &mut Ctx<'_>) {
        if self.finished {
            return;
        }
        let all_done = self.states.iter().all(|s| *s == NodeState::Done);
        let stuck = self.states.contains(&NodeState::Failed)
            && self.active == 0
            && !self
                .states
                .iter()
                .any(|s| matches!(s, NodeState::Ready | NodeState::Submitted));
        if all_done || stuck {
            self.finished = true;
            ctx.metrics().incr(
                if all_done {
                    "dag.completed"
                } else {
                    "dag.failed"
                },
                1,
            );
            ctx.trace(
                "dag.finished",
                (if all_done { "success" } else { "FAILED" }).to_string(),
            );
            self.persist(ctx);
        }
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let done = self
            .states
            .iter()
            .filter(|s| **s == NodeState::Done)
            .count() as u64;
        let failed = self
            .states
            .iter()
            .filter(|s| **s == NodeState::Failed)
            .count() as u64;
        let node = ctx.node();
        ctx.store().put(node, "dag/done_nodes", &done);
        ctx.store().put(node, "dag/failed_nodes", &failed);
        ctx.store().put(node, "dag/finished", &self.finished);
        let all_done = done as usize == self.states.len();
        ctx.store()
            .put(node, "dag/success", &(self.finished && all_done));
    }
}

impl Component for DagMan {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration::from_secs(1), TAG_KICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_KICK {
            self.submit_ready(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Some(event) = msg.downcast_ref::<UserEvent>() else {
            return;
        };
        match event {
            UserEvent::Submitted { id, job } => {
                if let Some(node) = self.pending_ids.remove(id) {
                    self.job_map.insert(*job, node);
                }
            }
            UserEvent::Status { job, status, .. } => {
                let Some(&node) = self.job_map.get(job) else {
                    return;
                };
                if self.states[node] != NodeState::Submitted {
                    return;
                }
                match status {
                    JobStatus::Done => {
                        self.states[node] = NodeState::Done;
                        self.active -= 1;
                        ctx.metrics().incr("dag.nodes_done", 1);
                        self.submit_ready(ctx);
                    }
                    JobStatus::Failed(_) | JobStatus::Removed => {
                        self.active -= 1;
                        if self.attempts[node] < self.dag.nodes[node].retries {
                            self.attempts[node] += 1;
                            ctx.metrics().incr("dag.retries", 1);
                            self.states[node] = NodeState::Ready;
                        } else {
                            self.states[node] = NodeState::Failed;
                            ctx.metrics().incr("dag.nodes_failed", 1);
                        }
                        self.submit_ready(ctx);
                    }
                    _ => {}
                }
            }
            UserEvent::Log { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_validate() {
        let dag = DagSpec::parse(
            "# CMS-style pipeline
             JOB sim1 runtime=3600 stdout=1000\n\
             JOB sim2 runtime=3600\n\
             JOB xfer runtime=600\n\
             JOB recon runtime=7200 count=4\n\
             PARENT sim1 sim2 CHILD xfer\n\
             PARENT xfer CHILD recon\n\
             RETRY sim1 3\n\
             MAXACTIVE 2",
        )
        .unwrap();
        assert_eq!(dag.nodes.len(), 4);
        assert_eq!(dag.edges.len(), 3);
        assert_eq!(dag.max_active, 2);
        assert_eq!(dag.nodes[0].retries, 3);
        assert_eq!(dag.nodes[3].spec.count, 4);
    }

    #[test]
    fn parse_errors() {
        assert!(DagSpec::parse("JOB a runtime=ten").is_err());
        assert!(DagSpec::parse("PARENT a CHILD b").is_err(), "unknown nodes");
        assert!(DagSpec::parse("JOB a\nJOB a").is_err(), "duplicate");
        assert!(DagSpec::parse("FROBNICATE x").is_err());
        assert!(DagSpec::parse("JOB a\nPARENT a CHILD").is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut dag = DagSpec::new();
        let a = dag.add("a", GridJobSpec::grid("a", "/x", Duration::from_secs(1)));
        let b = dag.add("b", GridJobSpec::grid("b", "/x", Duration::from_secs(1)));
        dag.edge(a, b);
        dag.edge(b, a);
        assert!(dag.validate().is_err());
        // Self edge too.
        let mut dag = DagSpec::new();
        let a = dag.add("a", GridJobSpec::grid("a", "/x", Duration::from_secs(1)));
        dag.edge(a, a);
        assert!(dag.validate().is_err());
    }

    #[test]
    fn diamond_is_valid() {
        let mut dag = DagSpec::new();
        let a = dag.add("a", GridJobSpec::grid("a", "/x", Duration::from_secs(1)));
        let b = dag.add("b", GridJobSpec::grid("b", "/x", Duration::from_secs(1)));
        let c = dag.add("c", GridJobSpec::grid("c", "/x", Duration::from_secs(1)));
        let d = dag.add("d", GridJobSpec::grid("d", "/x", Duration::from_secs(1)));
        dag.edge(a, b);
        dag.edge(a, c);
        dag.edge(b, d);
        dag.edge(c, d);
        assert!(dag.validate().is_ok());
    }
}
