//! The user-facing API (paper §4.1).
//!
//! "The agent allows the user to treat the Grid as an entirely local
//! resource, with an API and command line tools that allow the user to:
//! submit jobs...; query a job's status, or cancel the job; be informed of
//! job termination or problems, via callbacks or asynchronous mechanisms
//! such as e-mail; obtain access to detailed logs."

use gridsim::time::{Duration, SimTime};
use gsi::ProxyCredential;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A job's identity in the Condor-G queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridJobId(pub u64);

impl fmt::Display for GridJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gj{}", self.0)
    }
}

/// Which execution path a job takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Universe {
    /// Direct GRAM submission to a remote site ("globus universe").
    Grid,
    /// Matchmade onto the personal (GlideIn) pool ("standard universe"
    /// semantics: remote I/O + checkpointing).
    Pool,
}

/// A user job description.
///
/// ```
/// use condor_g::api::{GridJobSpec, Universe};
/// use gridsim::time::Duration;
///
/// let job = GridJobSpec::grid("sim", "/home/jane/sim.exe", Duration::from_hours(2))
///     .with_stdout(1_000_000)
///     .with_requirements("TARGET.Arch == \"INTEL\" && TARGET.FreeCpus > 0")
///     .with_rank("TARGET.FreeCpus");
/// assert_eq!(job.universe, Universe::Grid);
/// assert_eq!(job.stdout_size, 1_000_000);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridJobSpec {
    /// Human-readable name (appears in logs and emails).
    pub name: String,
    /// Path of the executable on the submit machine.
    pub executable: String,
    /// Command-line arguments.
    pub arguments: Vec<String>,
    /// Execution path.
    pub universe: Universe,
    /// True service demand (simulation stand-in for running the binary).
    pub runtime: Duration,
    /// Processors.
    pub count: u32,
    /// Bytes of stdout the job will produce (staged back on completion).
    pub stdout_size: u64,
    /// Declared wall-time request in minutes (what the site scheduler sees).
    pub wall_minutes: Option<u64>,
    /// Brokering constraint over site ads, e.g. `FreeCpus > 0 &&
    /// Arch == "INTEL"` (None = any site).
    pub requirements: Option<String>,
    /// Brokering preference over site ads (higher = better).
    pub rank: Option<String>,
    /// Pool universe: remote-I/O call interval (seconds) and bytes/batch.
    pub io_interval_secs: Option<f64>,
    /// Pool universe: bytes per remote-I/O batch.
    pub io_bytes: u64,
    /// Architecture the executable is built for (`None` = portable).
    pub required_arch: Option<String>,
}

impl GridJobSpec {
    /// A single-CPU grid-universe job.
    pub fn grid(name: &str, executable: &str, runtime: Duration) -> GridJobSpec {
        GridJobSpec {
            name: name.to_string(),
            executable: executable.to_string(),
            arguments: Vec::new(),
            universe: Universe::Grid,
            runtime,
            count: 1,
            stdout_size: 0,
            wall_minutes: None,
            requirements: None,
            rank: None,
            io_interval_secs: None,
            io_bytes: 0,
            required_arch: None,
        }
    }

    /// A pool-universe (GlideIn) job.
    pub fn pool(name: &str, executable: &str, runtime: Duration) -> GridJobSpec {
        GridJobSpec {
            universe: Universe::Pool,
            ..GridJobSpec::grid(name, executable, runtime)
        }
    }

    /// Builder: stdout size.
    pub fn with_stdout(mut self, bytes: u64) -> GridJobSpec {
        self.stdout_size = bytes;
        self
    }

    /// Builder: arguments.
    pub fn with_args(mut self, args: &[&str]) -> GridJobSpec {
        self.arguments = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: brokering requirements.
    pub fn with_requirements(mut self, req: &str) -> GridJobSpec {
        self.requirements = Some(req.to_string());
        self
    }

    /// Builder: brokering rank.
    pub fn with_rank(mut self, rank: &str) -> GridJobSpec {
        self.rank = Some(rank.to_string());
        self
    }

    /// Builder: wall-time declaration (minutes).
    pub fn with_wall_minutes(mut self, mins: u64) -> GridJobSpec {
        self.wall_minutes = Some(mins);
        self
    }

    /// Builder: remote I/O behaviour (pool universe).
    pub fn with_remote_io(mut self, interval_secs: f64, bytes: u64) -> GridJobSpec {
        self.io_interval_secs = Some(interval_secs);
        self.io_bytes = bytes;
        self
    }

    /// Builder: processor count.
    pub fn with_count(mut self, count: u32) -> GridJobSpec {
        self.count = count;
        self
    }

    /// Builder: the executable's architecture (wrong-arch sites fail it).
    pub fn with_arch(mut self, arch: &str) -> GridJobSpec {
        self.required_arch = Some(arch.to_string());
        self
    }
}

/// Job status as reported to the user.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobStatus {
    /// In the queue, not yet sent anywhere.
    Unsubmitted,
    /// Submitted to a remote site / pool; waiting to run.
    Pending,
    /// Staging files to the execution site.
    Staging,
    /// Executing.
    Active,
    /// Held with a reason (credential expired, too many failures...).
    Held(String),
    /// Finished successfully.
    Done,
    /// Failed with a reason, no more retries.
    Failed(String),
    /// Cancelled by the user.
    Removed,
}

impl JobStatus {
    /// True for states a job never leaves.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed(_) | JobStatus::Removed
        )
    }
}

/// Commands a user (or a tool acting for them, like DAGMan) sends to the
/// Scheduler.
#[derive(Debug)]
pub enum UserCmd {
    /// Queue a job.
    Submit {
        /// Caller correlation id.
        id: u64,
        /// The job.
        spec: GridJobSpec,
    },
    /// Ask for a job's current status.
    Query {
        /// The job.
        job: GridJobId,
    },
    /// Cancel a job.
    Cancel {
        /// The job.
        job: GridJobId,
    },
    /// Fetch the complete event log.
    GetLog,
    /// Provide a refreshed proxy (the user ran `grid-proxy-init` after the
    /// expiry email).
    RefreshProxy {
        /// The fresh credential.
        credential: ProxyCredential,
    },
}

/// Events and replies the Scheduler sends back to the user.
#[derive(Debug)]
pub enum UserEvent {
    /// Submission accepted.
    Submitted {
        /// Caller correlation id.
        id: u64,
        /// Queue id assigned.
        job: GridJobId,
    },
    /// Answer to `Query`, and pushed on every state change (callbacks).
    Status {
        /// The job.
        job: GridJobId,
        /// Its state.
        status: JobStatus,
        /// When this was true.
        at: SimTime,
    },
    /// The complete log, answering `GetLog`.
    Log {
        /// `(time, job, message)` triples in order.
        entries: Vec<(SimTime, GridJobId, String)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let s = GridJobSpec::grid("sim", "/home/j/sim.exe", Duration::from_hours(2))
            .with_stdout(1024)
            .with_args(&["--fast"])
            .with_requirements("Arch == \"INTEL\"")
            .with_rank("FreeCpus")
            .with_wall_minutes(150)
            .with_count(2);
        assert_eq!(s.universe, Universe::Grid);
        assert_eq!(s.count, 2);
        assert_eq!(s.stdout_size, 1024);
        assert_eq!(s.requirements.as_deref(), Some("Arch == \"INTEL\""));
        let p = GridJobSpec::pool("w", "/w", Duration::from_mins(5)).with_remote_io(60.0, 4096);
        assert_eq!(p.universe, Universe::Pool);
        assert_eq!(p.io_bytes, 4096);
    }

    #[test]
    fn terminal_statuses() {
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Failed("x".into()).is_terminal());
        assert!(JobStatus::Removed.is_terminal());
        assert!(!JobStatus::Active.is_terminal());
        assert!(!JobStatus::Held("y".into()).is_terminal());
    }
}
