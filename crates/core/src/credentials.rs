//! Credential-lifetime policy helpers (§4.3).
//!
//! The live logic runs inside [`crate::GridManager`] (`check_credentials`
//! / `adopt_credential`); this module holds the pure policy computation so
//! it can be unit-tested and reused by the experiment harness.

use gridsim::time::{Duration, SimTime};
use gsi::ProxyCredential;

/// What the periodic credential analysis decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CredentialAction {
    /// Plenty of life left.
    Nothing,
    /// Send the alarm e-mail (once).
    Warn,
    /// Hold all jobs and e-mail the user.
    Hold,
    /// Ask MyProxy for a fresh delegation.
    Refresh,
}

/// Evaluate the §4.3 policy for a credential at `now`.
///
/// Priority: a configured MyProxy refresh pre-empts holding (that is the
/// point of the enhancement); otherwise expiry ⇒ hold; otherwise the alarm
/// threshold ⇒ warn.
pub fn analyze(
    credential: &ProxyCredential,
    now: SimTime,
    warn_before: Duration,
    hold_before: Duration,
    myproxy_refresh_before: Option<Duration>,
) -> CredentialAction {
    let remaining = credential.time_remaining(now);
    if let Some(refresh_before) = myproxy_refresh_before {
        if remaining < refresh_before {
            return CredentialAction::Refresh;
        }
    }
    if remaining < hold_before {
        return CredentialAction::Hold;
    }
    if remaining < warn_before {
        return CredentialAction::Warn;
    }
    CredentialAction::Nothing
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi::CertificateAuthority;

    fn proxy(hours: u64) -> ProxyCredential {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=u", Duration::from_days(365));
        id.new_proxy(SimTime::ZERO, Duration::from_hours(hours))
    }

    fn at(hours: u64) -> SimTime {
        SimTime::ZERO + Duration::from_hours(hours)
    }

    #[test]
    fn fresh_proxy_needs_nothing() {
        let p = proxy(12);
        assert_eq!(
            analyze(
                &p,
                at(1),
                Duration::from_hours(2),
                Duration::from_mins(15),
                None
            ),
            CredentialAction::Nothing
        );
    }

    #[test]
    fn warn_then_hold() {
        let p = proxy(12);
        // 10.5 h in: 1.5 h remain < 2 h warn threshold.
        assert_eq!(
            analyze(
                &p,
                at(10) + Duration::from_mins(30),
                Duration::from_hours(2),
                Duration::from_mins(15),
                None
            ),
            CredentialAction::Warn
        );
        // Past expiry: hold.
        assert_eq!(
            analyze(
                &p,
                at(13),
                Duration::from_hours(2),
                Duration::from_mins(15),
                None
            ),
            CredentialAction::Hold
        );
    }

    #[test]
    fn myproxy_refresh_preempts_hold() {
        let p = proxy(12);
        assert_eq!(
            analyze(
                &p,
                at(13),
                Duration::from_hours(2),
                Duration::from_mins(15),
                Some(Duration::from_hours(3)),
            ),
            CredentialAction::Refresh
        );
        // With lots of life left, MyProxy stays quiet too.
        assert_eq!(
            analyze(
                &p,
                at(1),
                Duration::from_hours(2),
                Duration::from_mins(15),
                Some(Duration::from_hours(3)),
            ),
            CredentialAction::Nothing
        );
    }
}
