#![warn(missing_docs)]
//! `condor-g` — the computation management agent (the paper's primary
//! contribution, §4–§5).
//!
//! Condor-G gives one user a *personal* single access point to every grid
//! resource they are authorized to use: submit, query, cancel, logs and
//! notifications all behave like a local batch system, while behind the
//! scenes the agent speaks GRAM/GASS/GSI/MDS to remote sites, survives
//! every failure mode the paper enumerates, and manages credential
//! lifetimes. The pieces:
//!
//! * [`api`] — the user-facing job language and status model ("There is
//!   nothing new or special about the semantics of these capabilities...
//!   one of the main objectives is to preserve the look and feel of a
//!   local resource manager").
//! * [`scheduler`] — the Scheduler daemon: the persistent job queue
//!   (Figure 1's "Persistent Job Queue"), the user command endpoint, and
//!   the supervisor that creates one [`gridmanager::GridManager`] per user.
//! * [`gridmanager`] — submits and manages jobs through the revised
//!   two-phase-commit GRAM protocol, probes JobManagers, distinguishes
//!   the paper's four failure classes and recovers from each, resubmits
//!   failed jobs, and re-forwards refreshed credentials.
//! * [`credentials`] — §4.3: periodic proxy analysis, hold-and-email on
//!   expiry, alarms, and the MyProxy auto-refresh enhancement.
//! * [`broker`] — §4.4 resource discovery and scheduling: the initial
//!   user-supplied list strategy and the MDS + matchmaking personal
//!   resource broker. The GridManager also implements §4.4's queued-job
//!   migration on top of whichever broker is active.
//! * [`glidein`] — §5: the mobile-sandboxing GlideIn factory that turns
//!   raw GRAM allocations into a personal Condor pool.
//! * [`dagman`] — inter-job dependencies (the CMS pipeline of §6 is "a
//!   two-node DAG" whose fan-out is itself DAG-controlled).
//! * [`email`] — the asynchronous user-notification channel the paper
//!   leans on for credential expiry and job termination.

pub mod api;
pub mod broker;
pub mod credentials;
pub mod dagman;
pub mod email;
pub mod glidein;
pub mod gridmanager;
pub mod scheduler;

pub use api::{GridJobId, GridJobSpec, JobStatus, UserCmd, UserEvent};
pub use broker::{AdaptiveBroker, Broker, GatekeeperInfo, MdsBroker, StaticListBroker};
pub use dagman::{DagMan, DagSpec};
pub use email::Mailer;
pub use glidein::GlideinFactory;
pub use gridmanager::GridManager;
pub use scheduler::Scheduler;
