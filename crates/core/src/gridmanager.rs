//! The GridManager daemon (paper §4.2–§4.3).
//!
//! One GridManager serves all of one user's grid-universe jobs. For each
//! job it drives the revised GRAM protocol — two-phase submit with
//! retransmission, commit, status callbacks — and implements the paper's
//! fault-tolerance algorithm verbatim:
//!
//! > "The GridManager detects remote failures by periodically probing the
//! > JobManagers of all the jobs it manages. If a JobManager fails to
//! > respond, the GridManager then probes the GateKeeper for that machine.
//! > If the GateKeeper responds, then the GridManager knows that the
//! > individual JobManager crashed... the GridManager attempts to start a
//! > new JobManager to resume watching the job. Otherwise, the GridManager
//! > waits until it can reestablish contact with the remote machine."
//!
//! It also owns credential management (§4.3): periodic proxy analysis,
//! alarms, hold-and-email on expiry, automatic MyProxy refresh, and
//! re-forwarding refreshed proxies to remote JobManagers.

use crate::api::{GridJobId, GridJobSpec, JobStatus};
use crate::broker::Broker;
use crate::email::Email;
use gass::GassUrl;
use gram::proto::{GramJobState, GramReply, GramRequest, JmMsg, JobContact};
use gram::{RslSpec, SubmitSession};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::{MyProxyReply, MyProxyRequest, ProxyCredential};
use mds::{attr_to_addr, GripQuery, GripReply};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// MyProxy auto-refresh settings (§4.3's proposed enhancement).
#[derive(Clone, Debug)]
pub struct MyProxySettings {
    /// The MyProxy server.
    pub server: Addr,
    /// Account name at the server.
    pub account: String,
    /// Retrieval passphrase.
    pub passphrase: u64,
    /// Lifetime to request for each short-lived proxy.
    pub lifetime: Duration,
    /// Refresh when less than this much life remains.
    pub refresh_before: Duration,
}

/// GridManager tuning.
#[derive(Clone, Debug)]
pub struct GmConfig {
    /// The user served.
    pub user: String,
    /// MDS index for the matchmaking broker (None = static broker only).
    pub giis: Option<Addr>,
    /// MyProxy auto-refresh (None = hold-and-email on expiry).
    pub myproxy: Option<MyProxySettings>,
    /// Mail spool for alarms and hold notices.
    pub mailer: Option<Addr>,
    /// JobManager probe period.
    pub probe_interval: Duration,
    /// Internal bookkeeping tick.
    pub tick: Duration,
    /// Submit retransmission period.
    pub submit_retry: Duration,
    /// Resubmission budget per job before it fails for good.
    pub max_retries: u32,
    /// E-mail an alarm when less than this much proxy life remains.
    pub warn_before: Duration,
    /// Hold jobs when less than this much proxy life remains.
    pub hold_before: Duration,
    /// MDS poll period.
    pub mds_poll: Duration,
    /// §4.4: migrate a job that has been *queued* at a site this long to
    /// another candidate site ("Monitoring of actual queuing and execution
    /// times allows... to migrate queued jobs"). `None` disables.
    pub migrate_pending_after: Option<Duration>,
    /// The §4.2 failure-detection machinery (probing, gatekeeper pings,
    /// JobManager restarts). Disable for the fault-tolerance ablation.
    pub recovery: bool,
    /// Feed grid weather back to the broker each tick so it can quarantine
    /// sick sites (pair with an [`crate::broker::AdaptiveBroker`]). Off by
    /// default: routing decisions stay byte-identical to the non-adaptive
    /// baseline unless a run opts in.
    pub adaptive: bool,
    /// Campaign (lean) mode: delete a terminal job's persistent record
    /// outright instead of leaving a tombstone, so the store footprint also
    /// tracks live jobs. Trades away recover-after-finish detection.
    pub lean: bool,
}

impl Default for GmConfig {
    fn default() -> GmConfig {
        GmConfig {
            user: "user".into(),
            giis: None,
            myproxy: None,
            mailer: None,
            probe_interval: Duration::from_mins(5),
            tick: Duration::from_secs(30),
            submit_retry: Duration::from_secs(30),
            max_retries: 5,
            warn_before: Duration::from_hours(2),
            hold_before: Duration::from_mins(15),
            mds_poll: Duration::from_mins(5),
            migrate_pending_after: None,
            recovery: true,
            adaptive: false,
            lean: false,
        }
    }
}

/// Scheduler → GridManager commands (same-node).
#[derive(Debug)]
pub enum GmCmd {
    /// Take responsibility for a new job.
    Manage {
        /// Queue id.
        job: GridJobId,
        /// The job.
        spec: GridJobSpec,
    },
    /// Re-attach to a job from persistent state after a restart.
    Recover {
        /// Queue id.
        job: GridJobId,
        /// The job.
        spec: GridJobSpec,
    },
    /// Cancel a job.
    Cancel {
        /// Queue id.
        job: GridJobId,
    },
    /// The user refreshed their proxy.
    RefreshProxy {
        /// The fresh credential.
        credential: ProxyCredential,
    },
}

/// GridManager → Scheduler status update.
#[derive(Debug)]
pub struct GmUpdate {
    /// The job.
    pub job: GridJobId,
    /// New user-visible status.
    pub status: JobStatus,
}

/// GridManager → Scheduler: all jobs terminal; the daemon exits and hands
/// the broker back.
pub struct GmExiting {
    /// The broker, returned for reuse by a future GridManager.
    pub broker: Box<dyn Broker>,
}

impl fmt::Debug for GmExiting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GmExiting")
    }
}

/// Persisted per-job protocol state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct GmJobDisk {
    spec: GridJobSpec,
    attempts: u32,
    seq: Option<u64>,
    site: Option<String>,
    gatekeeper: Option<Addr>,
    contact: Option<u64>,
    stdout_path: String,
    excluded: Vec<String>,
    terminal: bool,
}

enum Phase {
    /// Waiting for the broker to name a site.
    NeedSite,
    /// Two-phase submit in flight (boxed: the session dwarfs the other
    /// variants).
    Submitting {
        session: Box<SubmitSession>,
        last_send: SimTime,
    },
    /// JobManager known and believed alive.
    Live {
        jm: Addr,
        probe_sent: Option<SimTime>,
        last_contact: SimTime,
        missed: u32,
        gram_state: GramJobState,
        /// The commit has been acknowledged (stop retransmitting it).
        commit_acked: bool,
        /// When the job entered the site queue (for migration decisions).
        pending_since: Option<SimTime>,
    },
    /// JobManager unresponsive: pinging the gatekeeper.
    PingingGk { last_ping: SimTime },
    /// Restart request sent; waiting for the new JobManager.
    AwaitRestart { since: SimTime },
    /// Nothing more to do.
    Terminal,
}

struct GmJob {
    spec: GridJobSpec,
    attempts: u32,
    seq: Option<u64>,
    site: Option<String>,
    gatekeeper: Option<Addr>,
    contact: Option<JobContact>,
    stdout_path: String,
    excluded: Vec<String>,
    phase: Phase,
    reported: JobStatus,
    /// A cancel is in flight because the job is being moved to a better
    /// site; the Removed callback resubmits instead of finishing.
    migrating: bool,
}

const TAG_TICK: u64 = 1;

/// The GridManager component.
pub struct GridManager {
    config: GmConfig,
    credential: ProxyCredential,
    scheduler: Addr,
    gass: Addr,
    broker: Option<Box<dyn Broker>>,
    jobs: BTreeMap<GridJobId, GmJob>,
    /// Secondary indexes over `jobs` — protocol replies arrive keyed by
    /// submit sequence number or job contact, and a campaign-sized queue
    /// cannot afford a linear scan per reply.
    by_seq: HashMap<u64, GridJobId>,
    by_contact: HashMap<JobContact, GridJobId>,
    /// Jobs that reached a terminal state and were evicted from `jobs`
    /// (their persisted record shrinks to a tombstone). Keeps the hot map
    /// proportional to *live* jobs, not campaign size.
    retired: u64,
    next_seq: u64,
    held: bool,
    warned: bool,
    myproxy_req: u64,
    last_mds_poll: Option<SimTime>,
    mds_req: u64,
    /// Correlation ids for lean-mode GASS cache cleanup requests.
    gass_req: u64,
    recovering: bool,
}

impl GridManager {
    /// A GridManager for `config.user`, reporting to `scheduler`, staging
    /// through the GASS server at `gass`.
    pub fn new(
        config: GmConfig,
        credential: ProxyCredential,
        scheduler: Addr,
        gass: Addr,
        broker: Box<dyn Broker>,
        recovering: bool,
    ) -> GridManager {
        GridManager {
            config,
            credential,
            scheduler,
            gass,
            broker: Some(broker),
            jobs: BTreeMap::new(),
            by_seq: HashMap::new(),
            by_contact: HashMap::new(),
            retired: 0,
            next_seq: 0,
            held: false,
            warned: false,
            myproxy_req: 0,
            last_mds_poll: None,
            mds_req: 0,
            gass_req: 0,
            recovering,
        }
    }

    fn job_key(&self, job: GridJobId) -> String {
        format!("gm/{}/job/{}", self.config.user, job.0)
    }

    fn seq_key(&self) -> String {
        format!("gm/{}/next_seq", self.config.user)
    }

    fn persist_job(&self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let Some(j) = self.jobs.get(&job) else { return };
        let terminal = matches!(j.phase, Phase::Terminal);
        // Terminal records shrink to a tombstone: recovery only reads the
        // `terminal` flag for finished jobs (the spec is re-supplied by the
        // scheduler's Recover command), so the strings need not survive.
        let disk = if terminal {
            GmJobDisk {
                spec: GridJobSpec::grid("", "", Duration::from_secs(0)),
                attempts: j.attempts,
                seq: None,
                site: None,
                gatekeeper: None,
                contact: None,
                stdout_path: String::new(),
                excluded: Vec::new(),
                terminal: true,
            }
        } else {
            GmJobDisk {
                spec: j.spec.clone(),
                attempts: j.attempts,
                seq: j.seq,
                site: j.site.clone(),
                gatekeeper: j.gatekeeper,
                contact: j.contact.map(|c| c.0),
                stdout_path: j.stdout_path.clone(),
                excluded: j.excluded.clone(),
                terminal: false,
            }
        };
        let key = self.job_key(job);
        let node = ctx.node();
        ctx.store().put(node, &key, &disk);
    }

    /// Evict a terminal job from the hot map (its tombstone is already on
    /// disk). Must run *after* the final `report`, which needs the record.
    fn retire(&mut self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let Some(j) = self.jobs.get(&job) else { return };
        if !matches!(j.phase, Phase::Terminal) {
            return;
        }
        if let Some(seq) = j.seq {
            self.by_seq.remove(&seq);
        }
        if let Some(contact) = j.contact {
            self.by_contact.remove(&contact);
        }
        let staged_out =
            (j.spec.stdout_size > 0 && !j.stdout_path.is_empty()).then(|| j.stdout_path.clone());
        self.jobs.remove(&job);
        self.retired += 1;
        if self.config.lean {
            // Campaign mode: no tombstone either.
            let key = self.job_key(job);
            let node = ctx.node();
            ctx.store().remove(node, &key);
            // Collect-and-discard the staged output: the user agent has
            // seen the terminal status, so the GASS cache entry is dead
            // weight (a million-job campaign would otherwise keep a
            // million stdout files). Fire-and-forget — deletion is
            // idempotent and losing one costs only memory.
            if let Some(path) = staged_out {
                self.gass_req += 1;
                ctx.send(
                    self.gass,
                    gass::GassRequest::Delete {
                        request_id: self.gass_req,
                        credential: self.credential.clone(),
                        path,
                    },
                );
            }
        }
    }

    fn persist_seq(&self, ctx: &mut Ctx<'_>) {
        let key = self.seq_key();
        let node = ctx.node();
        let seq = self.next_seq;
        ctx.store().put(node, &key, &seq);
    }

    fn report(&mut self, ctx: &mut Ctx<'_>, job: GridJobId, status: JobStatus) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if j.reported == status {
            return;
        }
        j.reported = status.clone();
        // Span milestone for terminal states; intermediate statuses are
        // covered by the jobmanager-side milestones.
        let terminal = match &status {
            JobStatus::Done => Some("done"),
            JobStatus::Failed(_) => Some("failed"),
            JobStatus::Removed => Some("removed"),
            _ => None,
        };
        if let Some(milestone) = terminal {
            ctx.trace_with("span", || format!("job={} phase={milestone}", job.0));
        }
        ctx.send_local(self.scheduler, GmUpdate { job, status });
    }

    fn rsl_for(&self, job: GridJobId, spec: &GridJobSpec) -> RslSpec {
        let exe_url = GassUrl::gass(self.gass, &spec.executable);
        let stdout_path = format!("/condor_g/out/{job}");
        let mut rsl = RslSpec::job(&exe_url.to_string(), spec.runtime).with_count(spec.count);
        rsl.arguments = spec.arguments.clone();
        if spec.stdout_size > 0 {
            let out_url = GassUrl::gass(self.gass, &stdout_path);
            rsl = rsl.with_stdout(&out_url.to_string(), spec.stdout_size);
        }
        if let Some(mins) = spec.wall_minutes {
            rsl = rsl.with_max_wall_minutes(mins);
        }
        if let Some(arch) = &spec.required_arch {
            rsl.extra.insert("arch".into(), vec![arch.clone()]);
        }
        rsl
    }

    /// Start (or restart) the two-phase submission of a job.
    fn begin_submit(&mut self, ctx: &mut Ctx<'_>, job: GridJobId) {
        if self.held {
            return;
        }
        let Some(j) = self.jobs.get(&job) else { return };
        let spec = j.spec.clone();
        let excluded = j.excluded.clone();
        let Some(broker) = self.broker.as_mut() else {
            return;
        };
        let Some(target) = broker.select(&spec, &excluded) else {
            // No resource available yet (e.g. MDS cache still empty).
            return;
        };
        broker.note_submission(&target.site);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.persist_seq(ctx);
        let rsl = self.rsl_for(job, &spec);
        let me = ctx.self_addr();
        let mut session = SubmitSession::new(
            seq,
            rsl.to_string(),
            self.credential.clone(),
            me,
            GassUrl::gass(self.gass, ""),
        );
        ctx.metrics().incr("gm.submissions", 1);
        ctx.trace_with("gm.submit", || {
            format!("{job} -> {} (seq {seq})", target.site)
        });
        ctx.trace_with("span", || {
            format!("job={} seq={seq} phase=submit site={}", job.0, target.site)
        });
        ctx.send(target.addr, session.request());
        self.by_seq.insert(seq, job);
        let j = self.jobs.get_mut(&job).expect("job exists");
        j.seq = Some(seq);
        j.site = Some(target.site);
        j.gatekeeper = Some(target.addr);
        j.stdout_path = format!("/condor_g/out/{job}");
        j.phase = Phase::Submitting {
            session: Box::new(session),
            last_send: ctx.now(),
        };
        self.persist_job(ctx, job);
        self.report(ctx, job, JobStatus::Pending);
    }

    /// Adaptive mode: hand the current grid weather to the broker and
    /// trace whatever quarantine/probe/recover transitions it decides on,
    /// so rerouting is visible in the same causal timeline as the jobs it
    /// moves. A no-op (not even a weather aggregation) unless enabled.
    fn observe_weather(&mut self, ctx: &mut Ctx<'_>) {
        if !self.config.adaptive {
            return;
        }
        let Some(broker) = self.broker.as_mut() else {
            return;
        };
        let rows = gridsim::obs::grid_weather(ctx.metrics());
        let now = ctx.now();
        for ev in broker.observe_weather(&rows, now) {
            ctx.metrics().incr("broker.health_transitions", 1);
            ctx.trace_with(ev.action.kind(), || {
                format!("site={} reason={}", ev.site, ev.reason)
            });
        }
    }

    /// A remote attempt failed: exclude the site and resubmit elsewhere,
    /// or give up after the retry budget.
    fn attempt_failed(&mut self, ctx: &mut Ctx<'_>, job: GridJobId, why: &str) {
        let max_retries = self.config.max_retries;
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if matches!(j.phase, Phase::Terminal) {
            return;
        }
        ctx.metrics().incr("gm.attempt_failures", 1);
        ctx.trace_with("gm.attempt_failed", || format!("{job}: {why}"));
        j.attempts += 1;
        // Charge the failure to the site's weather before dropping it, so
        // a gatekeeper that never accepted anything still shows up in the
        // per-site table (and trips the adaptive quarantine).
        if let Some(site) = &j.site {
            let name = format!("site.{site}.attempt_failures");
            ctx.metrics().incr(&name, 1);
        }
        if let Some(site) = j.site.take() {
            if !j.excluded.contains(&site) {
                j.excluded.push(site);
            }
        }
        j.gatekeeper = None;
        let (old_seq, old_contact) = (j.seq.take(), j.contact.take());
        if j.attempts > max_retries {
            j.phase = Phase::Terminal;
            let reason = format!("{why} (after {} attempts)", j.attempts);
            self.unindex(old_seq, old_contact);
            self.persist_job(ctx, job);
            self.report(ctx, job, JobStatus::Failed(reason));
            self.retire(ctx, job);
        } else {
            j.phase = Phase::NeedSite;
            self.unindex(old_seq, old_contact);
            self.persist_job(ctx, job);
            self.begin_submit(ctx, job);
        }
    }

    fn job_by_seq(&mut self, seq: u64) -> Option<GridJobId> {
        self.by_seq.get(&seq).copied()
    }

    fn job_by_contact(&mut self, contact: JobContact) -> Option<GridJobId> {
        self.by_contact.get(&contact).copied()
    }

    /// Drop a job's seq/contact index entries (site abandoned or job moved).
    fn unindex(&mut self, seq: Option<u64>, contact: Option<JobContact>) {
        if let Some(seq) = seq {
            self.by_seq.remove(&seq);
        }
        if let Some(contact) = contact {
            self.by_contact.remove(&contact);
        }
    }

    /// Bytes of this job's stdout already present on the local GASS server
    /// (used to resume output staging after a restart, §3.2).
    fn stdout_have(&self, ctx: &mut Ctx<'_>, job: GridJobId) -> u64 {
        let Some(j) = self.jobs.get(&job) else {
            return 0;
        };
        let key = format!("gass/size{}", j.stdout_path);
        ctx.store().get::<u64>(self.gass.node, &key).unwrap_or(0)
    }

    // ---- credential management (§4.3) ---------------------------------

    fn check_credentials(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let remaining = self.credential.time_remaining(now);
        // MyProxy auto-refresh path.
        if let Some(mp) = self.config.myproxy.clone() {
            if remaining < mp.refresh_before {
                self.myproxy_req += 1;
                ctx.metrics().incr("gm.myproxy_refresh_requests", 1);
                ctx.send(
                    mp.server,
                    MyProxyRequest::Retrieve {
                        user: mp.account.clone(),
                        passphrase: mp.passphrase,
                        lifetime: mp.lifetime,
                        request_id: self.myproxy_req,
                    },
                );
            }
        }
        // Alarm (§4.3: "it can be configured to e-mail a reminder when less
        // than a specified time remains").
        if remaining < self.config.warn_before && !self.warned && !remaining.is_zero() {
            self.warned = true;
            self.send_mail(
                ctx,
                "proxy credential expiring soon",
                &format!("proxy expires in {remaining}; run grid-proxy-init"),
            );
        }
        // Hold path.
        if remaining < self.config.hold_before && !self.held {
            self.held = true;
            ctx.metrics().incr("gm.credential_holds", 1);
            self.send_mail(
                ctx,
                "jobs held: credentials expired",
                "your proxy has (nearly) expired; jobs cannot run again until \
                 you refresh it with grid-proxy-init",
            );
            let jobs: Vec<GridJobId> = self
                .jobs
                .iter()
                .filter(|(_, j)| !matches!(j.phase, Phase::Terminal))
                .map(|(id, _)| *id)
                .collect();
            for job in jobs {
                self.report(ctx, job, JobStatus::Held("credentials expired".into()));
            }
        }
    }

    fn adopt_credential(&mut self, ctx: &mut Ctx<'_>, credential: ProxyCredential) {
        self.credential = credential;
        self.warned = false;
        ctx.metrics().incr("gm.credentials_adopted", 1);
        // Re-forward to every live JobManager (§4.3: "it also needs to
        // re-forward the refreshed proxy to the remote GRAM server").
        let targets: Vec<(GridJobId, Addr)> = self
            .jobs
            .iter()
            .filter_map(|(id, j)| match &j.phase {
                Phase::Live { jm, .. } => Some((*id, *jm)),
                _ => None,
            })
            .collect();
        for (_, jm) in &targets {
            ctx.send(
                *jm,
                JmMsg::RefreshCredential {
                    credential: self.credential.clone(),
                },
            );
        }
        if self.held {
            self.held = false;
            // Un-hold: restore live statuses and resume queued submissions.
            let jobs: Vec<GridJobId> = self.jobs.keys().copied().collect();
            for job in jobs {
                match self.jobs[&job].phase {
                    Phase::NeedSite => {
                        self.report(ctx, job, JobStatus::Unsubmitted);
                        self.begin_submit(ctx, job);
                    }
                    Phase::Live { gram_state, .. } => {
                        let status = gram_state_to_status(gram_state, true);
                        self.report(ctx, job, status);
                    }
                    Phase::Submitting { .. }
                    | Phase::PingingGk { .. }
                    | Phase::AwaitRestart { .. } => {
                        self.report(ctx, job, JobStatus::Pending);
                    }
                    Phase::Terminal => {}
                }
            }
        }
    }

    fn send_mail(&self, ctx: &mut Ctx<'_>, subject: &str, body: &str) {
        if let Some(mailer) = self.config.mailer {
            ctx.send(
                mailer,
                Email {
                    to: self.config.user.clone(),
                    subject: format!("[condor-g] {subject}"),
                    body: body.to_string(),
                },
            );
        }
    }

    // ---- failure detection & recovery (§4.2) ---------------------------

    fn tick_job(&mut self, ctx: &mut Ctx<'_>, job: GridJobId) {
        let now = ctx.now();
        let probe_interval = self.config.probe_interval;
        let submit_retry = self.config.submit_retry;
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        match &mut j.phase {
            Phase::NeedSite => {
                if !self.held {
                    self.begin_submit(ctx, job);
                }
            }
            Phase::Submitting { session, last_send } => {
                if session.awaiting_reply() && now - *last_send >= submit_retry {
                    if session.attempts >= 40 {
                        // The gatekeeper machine looks dead: try elsewhere.
                        self.attempt_failed(ctx, job, "gatekeeper unreachable");
                        return;
                    }
                    ctx.metrics().incr("gm.submit_retransmits", 1);
                    let req = session.request();
                    *last_send = now;
                    let gk = j.gatekeeper.expect("submitting has a gatekeeper");
                    ctx.send(gk, req);
                }
            }
            Phase::Live {
                jm,
                probe_sent,
                last_contact,
                missed,
                commit_acked,
                gram_state,
                pending_since,
            } => {
                // Retransmit the commit until the JobManager confirms it.
                if !*commit_acked {
                    ctx.send(*jm, JmMsg::Commit);
                }
                // §4.4 migration: a job stuck in a site queue moves if the
                // broker can name an alternative.
                if let Some(patience) = self.config.migrate_pending_after {
                    let queued_long = matches!(
                        gram_state,
                        GramJobState::Pending | GramJobState::PendingCommit
                    ) && pending_since.is_some_and(|t| now - t >= patience);
                    if queued_long && !j.migrating {
                        // Is there anywhere else to go?
                        let mut avoid = j.excluded.clone();
                        if let Some(site) = &j.site {
                            avoid.push(site.clone());
                        }
                        let alternative = self
                            .broker
                            .as_mut()
                            .and_then(|b| b.select(&j.spec, &avoid))
                            .is_some();
                        if alternative {
                            ctx.metrics().incr("gm.migrations", 1);
                            ctx.trace_with("gm.migrate", || {
                                format!("{job} stuck queued at {:?}", j.site)
                            });
                            j.migrating = true;
                            ctx.send(*jm, JmMsg::Cancel);
                        }
                    }
                }
                if !self.config.recovery {
                    return; // ablation: no probing, no failure detection
                }
                match probe_sent {
                    Some(sent) if now - *sent >= probe_interval => {
                        // Probe timed out unanswered.
                        *missed += 1;
                        *probe_sent = None;
                        ctx.metrics().incr("gm.probes_missed", 1);
                        if *missed >= 2 {
                            // "the GridManager then probes the GateKeeper"
                            ctx.trace_with("gm.jm_lost", || format!("{job}"));
                            let gk = j.gatekeeper.expect("live job has a gatekeeper");
                            ctx.send(gk, GramRequest::Ping { nonce: job.0 });
                            j.phase = Phase::PingingGk { last_ping: now };
                        }
                    }
                    None if now - *last_contact >= probe_interval => {
                        let nonce = now.micros();
                        ctx.metrics().incr("gm.probes", 1);
                        ctx.send(*jm, JmMsg::Probe { nonce });
                        *probe_sent = Some(now);
                    }
                    _ => {}
                }
            }
            Phase::PingingGk { last_ping } => {
                if now - *last_ping >= probe_interval {
                    // "the GridManager waits until it can reestablish
                    // contact with the remote machine" — keep pinging.
                    let gk = j.gatekeeper.expect("pinging job has a gatekeeper");
                    ctx.send(gk, GramRequest::Ping { nonce: job.0 });
                    *last_ping = now;
                }
            }
            Phase::AwaitRestart { since } => {
                if now - *since >= probe_interval * 2 {
                    // The restart request was lost: ping again.
                    let gk = j.gatekeeper.expect("job has a gatekeeper");
                    ctx.send(gk, GramRequest::Ping { nonce: job.0 });
                    j.phase = Phase::PingingGk { last_ping: now };
                }
            }
            Phase::Terminal => {}
        }
    }

    fn poll_mds(&mut self, ctx: &mut Ctx<'_>) {
        let Some(giis) = self.config.giis else { return };
        let due = self
            .last_mds_poll
            .is_none_or(|t| ctx.now() - t >= self.config.mds_poll);
        if !due {
            return;
        }
        self.last_mds_poll = Some(ctx.now());
        self.mds_req += 1;
        ctx.send(
            giis,
            GripQuery {
                request_id: self.mds_req,
                credential: self.credential.clone(),
                filter: "TotalCpus > 0".into(),
            },
        );
    }

    fn maybe_exit(&mut self, ctx: &mut Ctx<'_>) {
        // Terminal jobs are evicted from `jobs` as they finish, so "all
        // jobs terminal" becomes "no live jobs left, and we had some".
        if self.retired == 0 || !self.jobs.is_empty() {
            return;
        }
        if let Some(broker) = self.broker.take() {
            ctx.send_local(self.scheduler, GmExiting { broker });
        }
        ctx.trace_with("gm.exit", || "all jobs complete".to_string());
        ctx.kill(ctx.self_addr());
    }
}

fn gram_state_to_status(state: GramJobState, exit_ok: bool) -> JobStatus {
    match state {
        GramJobState::PendingCommit | GramJobState::Pending => JobStatus::Pending,
        GramJobState::StageIn | GramJobState::StageOut => JobStatus::Staging,
        GramJobState::Active => JobStatus::Active,
        GramJobState::Done => {
            if exit_ok {
                JobStatus::Done
            } else {
                JobStatus::Failed("job exited abnormally".into())
            }
        }
        GramJobState::Failed => JobStatus::Failed("remote failure".into()),
        GramJobState::Removed => JobStatus::Removed,
    }
}

impl Component for GridManager {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.config.tick, TAG_TICK);
        if self.recovering {
            let node = ctx.node();
            let key = self.seq_key();
            if let Some(seq) = ctx.store().get::<u64>(node, &key) {
                self.next_seq = seq;
            }
        }
        self.poll_mds(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag != TAG_TICK {
            return;
        }
        self.check_credentials(ctx);
        if !self.held {
            self.observe_weather(ctx);
            self.poll_mds(ctx);
            let jobs: Vec<GridJobId> = self.jobs.keys().copied().collect();
            for job in jobs {
                self.tick_job(ctx, job);
            }
        }
        self.maybe_exit(ctx);
        ctx.set_timer(self.config.tick, TAG_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        if let Some(cmd) = msg.downcast_ref::<GmCmd>() {
            match cmd {
                GmCmd::Manage { job, spec } => {
                    self.jobs.insert(
                        *job,
                        GmJob {
                            spec: spec.clone(),
                            attempts: 0,
                            seq: None,
                            site: None,
                            gatekeeper: None,
                            contact: None,
                            stdout_path: format!("/condor_g/out/{job}"),
                            excluded: Vec::new(),
                            phase: Phase::NeedSite,
                            reported: JobStatus::Unsubmitted,
                            migrating: false,
                        },
                    );
                    self.persist_job(ctx, *job);
                    self.begin_submit(ctx, *job);
                }
                GmCmd::Recover { job, spec } => {
                    let node = ctx.node();
                    let key = self.job_key(*job);
                    let disk = ctx.store().get::<GmJobDisk>(node, &key);
                    let mut rec = GmJob {
                        spec: spec.clone(),
                        attempts: 0,
                        seq: None,
                        site: None,
                        gatekeeper: None,
                        contact: None,
                        stdout_path: format!("/condor_g/out/{job}"),
                        excluded: Vec::new(),
                        phase: Phase::NeedSite,
                        reported: JobStatus::Unsubmitted,
                        migrating: false,
                    };
                    if let Some(d) = disk {
                        if d.terminal {
                            // Already finished in a previous life: count it
                            // toward exit without resurrecting the record.
                            self.retired += 1;
                            return;
                        }
                        rec.attempts = d.attempts;
                        rec.seq = d.seq;
                        rec.site = d.site;
                        rec.gatekeeper = d.gatekeeper;
                        rec.contact = d.contact.map(JobContact);
                        rec.stdout_path = d.stdout_path;
                        rec.excluded = d.excluded;
                    }
                    // Re-establish contact: if we know the job's contact,
                    // ping the gatekeeper and restart its JobManager; else
                    // the submission never stuck, so submit afresh.
                    if let Some(seq) = rec.seq {
                        self.by_seq.insert(seq, *job);
                    }
                    if let Some(contact) = rec.contact {
                        self.by_contact.insert(contact, *job);
                    }
                    match (rec.contact, rec.gatekeeper) {
                        (Some(_), Some(gk)) => {
                            ctx.metrics().incr("gm.job_recoveries", 1);
                            ctx.send(gk, GramRequest::Ping { nonce: job.0 });
                            rec.phase = Phase::PingingGk {
                                last_ping: ctx.now(),
                            };
                            self.jobs.insert(*job, rec);
                        }
                        _ => {
                            self.jobs.insert(*job, rec);
                            self.begin_submit(ctx, *job);
                        }
                    }
                }
                GmCmd::Cancel { job } => {
                    let Some(j) = self.jobs.get_mut(job) else {
                        return;
                    };
                    match &j.phase {
                        Phase::Live { jm, .. } => {
                            ctx.send(*jm, JmMsg::Cancel);
                        }
                        Phase::Terminal => {}
                        _ => {
                            j.phase = Phase::Terminal;
                            self.persist_job(ctx, *job);
                            self.report(ctx, *job, JobStatus::Removed);
                            self.retire(ctx, *job);
                        }
                    }
                }
                GmCmd::RefreshProxy { credential } => {
                    self.adopt_credential(ctx, credential.clone());
                }
            }
            return;
        }
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            match reply {
                GramReply::Submitted {
                    seq,
                    contact,
                    jobmanager,
                } => {
                    let Some(job) = self.job_by_seq(*seq) else {
                        return;
                    };
                    let j = self.jobs.get_mut(&job).expect("job exists");
                    if let Phase::Submitting { session, .. } = &mut j.phase {
                        use gram::client::SubmitAction;
                        match session.on_reply(reply) {
                            SubmitAction::SendCommit { jobmanager, .. } => {
                                ctx.send(jobmanager, JmMsg::Commit);
                                j.contact = Some(*contact);
                                j.phase = Phase::Live {
                                    jm: jobmanager,
                                    probe_sent: None,
                                    last_contact: ctx.now(),
                                    missed: 0,
                                    gram_state: GramJobState::PendingCommit,
                                    commit_acked: false,
                                    pending_since: Some(ctx.now()),
                                };
                                self.persist_job(ctx, job);
                            }
                            SubmitAction::GiveUp(_) | SubmitAction::Ignore => {}
                        }
                    } else if matches!(
                        j.phase,
                        Phase::PingingGk { .. } | Phase::AwaitRestart { .. }
                    ) {
                        // A duplicate submit answer can double as recovery.
                        j.contact = Some(*contact);
                        j.phase = Phase::Live {
                            jm: *jobmanager,
                            probe_sent: None,
                            last_contact: ctx.now(),
                            missed: 0,
                            gram_state: GramJobState::Pending,
                            commit_acked: true,
                            pending_since: Some(ctx.now()),
                        };
                        self.persist_job(ctx, job);
                    }
                    // Either branch may have learned the contact just now.
                    if self
                        .jobs
                        .get(&job)
                        .is_some_and(|j| j.contact == Some(*contact))
                    {
                        self.by_contact.insert(*contact, job);
                    }
                }
                GramReply::SubmitFailed { seq, error } => {
                    let Some(job) = self.job_by_seq(*seq) else {
                        return;
                    };
                    self.attempt_failed(ctx, job, &format!("submit failed: {error}"));
                }
                GramReply::Pong { nonce } => {
                    let job = GridJobId(*nonce);
                    let Some(j) = self.jobs.get_mut(&job) else {
                        return;
                    };
                    if let Phase::PingingGk { .. } = j.phase {
                        // "If the GateKeeper responds... attempts to start a
                        // new JobManager to resume watching the job."
                        let (Some(contact), Some(gk)) = (j.contact, j.gatekeeper) else {
                            return;
                        };
                        let me = ctx.self_addr();
                        let have = self.stdout_have(ctx, job);
                        ctx.metrics().incr("gm.jm_restarts_requested", 1);
                        ctx.send(
                            gk,
                            GramRequest::RestartJobManager {
                                contact,
                                credential: self.credential.clone(),
                                callback: me,
                                gass: GassUrl::gass(self.gass, ""),
                                stdout_have: have,
                                capability: None,
                            },
                        );
                        let j = self.jobs.get_mut(&job).expect("job exists");
                        j.phase = Phase::AwaitRestart { since: ctx.now() };
                    }
                }
                GramReply::Restarted {
                    contact,
                    jobmanager,
                } => {
                    let Some(job) = self.job_by_contact(*contact) else {
                        return;
                    };
                    let have = self.stdout_have(ctx, job);
                    // Re-point the JobManager at our (possibly new) GASS
                    // server and re-forward the current credential.
                    ctx.send(
                        *jobmanager,
                        JmMsg::UpdateGass {
                            gass: GassUrl::gass(self.gass, ""),
                            stdout_have: have,
                        },
                    );
                    ctx.send(
                        *jobmanager,
                        JmMsg::RefreshCredential {
                            credential: self.credential.clone(),
                        },
                    );
                    ctx.metrics().incr("gm.jm_restarted", 1);
                    let j = self.jobs.get_mut(&job).expect("job exists");
                    j.phase = Phase::Live {
                        jm: *jobmanager,
                        probe_sent: None,
                        last_contact: ctx.now(),
                        missed: 0,
                        gram_state: GramJobState::Pending,
                        commit_acked: true,
                        pending_since: Some(ctx.now()),
                    };
                    self.persist_job(ctx, job);
                }
                GramReply::RestartFailed { contact, error } => {
                    let Some(job) = self.job_by_contact(*contact) else {
                        return;
                    };
                    self.attempt_failed(ctx, job, &format!("restart failed: {error}"));
                    let _ = error;
                }
            }
            return;
        }
        if let Some(jm_msg) = msg.downcast_ref::<JmMsg>() {
            match jm_msg {
                JmMsg::Callback {
                    contact,
                    state,
                    exit_ok,
                    ..
                } => {
                    let Some(job) = self.job_by_contact(*contact) else {
                        return;
                    };
                    let j = self.jobs.get_mut(&job).expect("job exists");
                    if let Phase::Live {
                        last_contact,
                        gram_state,
                        commit_acked,
                        pending_since,
                        ..
                    } = &mut j.phase
                    {
                        *last_contact = ctx.now();
                        *commit_acked = true; // progress implies the commit landed
                                              // Track time-in-queue for migration decisions.
                        let was_queued = matches!(
                            gram_state,
                            GramJobState::Pending | GramJobState::PendingCommit
                        );
                        let is_queued =
                            matches!(state, GramJobState::Pending | GramJobState::PendingCommit);
                        if is_queued && !was_queued {
                            *pending_since = Some(ctx.now());
                        } else if !is_queued {
                            *pending_since = None;
                        }
                        *gram_state = *state;
                    }
                    match state {
                        GramJobState::Done if *exit_ok => {
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            j.phase = Phase::Terminal;
                            self.persist_job(ctx, job);
                            ctx.metrics().incr("gm.jobs_done", 1);
                            self.report(ctx, job, JobStatus::Done);
                            self.retire(ctx, job);
                        }
                        GramJobState::Done | GramJobState::Failed => {
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            self.attempt_failed(ctx, job, "remote execution failed");
                        }
                        GramJobState::Removed if j.migrating => {
                            // The cancel was ours: move the job.
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            j.migrating = false;
                            if let Some(site) = j.site.take() {
                                if !j.excluded.contains(&site) {
                                    j.excluded.push(site);
                                }
                            }
                            j.gatekeeper = None;
                            let (old_seq, old_contact) = (j.seq.take(), j.contact.take());
                            j.phase = Phase::NeedSite;
                            self.unindex(old_seq, old_contact);
                            self.persist_job(ctx, job);
                            self.begin_submit(ctx, job);
                        }
                        GramJobState::Removed => {
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            j.phase = Phase::Terminal;
                            self.persist_job(ctx, job);
                            self.report(ctx, job, JobStatus::Removed);
                            self.retire(ctx, job);
                        }
                        state => {
                            if !self.held {
                                let status = gram_state_to_status(*state, false);
                                self.report(ctx, job, status);
                            }
                        }
                    }
                }
                JmMsg::CommitAck { contact } => {
                    let Some(job) = self.job_by_contact(*contact) else {
                        return;
                    };
                    let j = self.jobs.get_mut(&job).expect("job exists");
                    if let Phase::Live {
                        commit_acked,
                        last_contact,
                        ..
                    } = &mut j.phase
                    {
                        *commit_acked = true;
                        *last_contact = ctx.now();
                    }
                }
                JmMsg::ProbeReply { contact, state, .. } => {
                    let Some(job) = self.job_by_contact(*contact) else {
                        return;
                    };
                    let j = self.jobs.get_mut(&job).expect("job exists");
                    if let Phase::Live {
                        probe_sent,
                        last_contact,
                        missed,
                        gram_state,
                        ..
                    } = &mut j.phase
                    {
                        *probe_sent = None;
                        *missed = 0;
                        *last_contact = ctx.now();
                        *gram_state = *state;
                    }
                    // A terminal state learned via probe means the actual
                    // callback was lost (e.g. to a partition): act on it.
                    match state {
                        GramJobState::Done => {
                            // The JobManager's Done state implies a clean
                            // exit (failures end in Failed).
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            j.phase = Phase::Terminal;
                            self.persist_job(ctx, job);
                            ctx.metrics().incr("gm.jobs_done", 1);
                            self.report(ctx, job, JobStatus::Done);
                            self.retire(ctx, job);
                        }
                        GramJobState::Failed => {
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            self.attempt_failed(ctx, job, "remote execution failed");
                        }
                        GramJobState::Removed => {
                            if let Phase::Live { jm, .. } = j.phase {
                                ctx.send(jm, JmMsg::DoneAck);
                            }
                            j.phase = Phase::Terminal;
                            self.persist_job(ctx, job);
                            self.report(ctx, job, JobStatus::Removed);
                            self.retire(ctx, job);
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            return;
        }
        if let Some(reply) = msg.downcast_ref::<MyProxyReply>() {
            if let MyProxyReply::Proxy { credential, .. } = reply {
                ctx.metrics().incr("gm.myproxy_refreshes", 1);
                self.adopt_credential(ctx, credential.clone());
            }
            return;
        }
        if msg.is::<GripReply>() {
            let Ok(reply) = msg.downcast::<GripReply>() else {
                return;
            };
            if let GripReply::Ads { ads, .. } = *reply {
                let parsed: Vec<(Addr, classads::ClassAd)> = ads
                    .into_iter()
                    .filter_map(|ad| {
                        let gk = ad.get_str("Gatekeeper")?;
                        Some((attr_to_addr(&gk)?, ad))
                    })
                    .collect();
                if let Some(broker) = self.broker.as_mut() {
                    broker.update_ads(parsed, ctx.now());
                }
                // Jobs stuck waiting for a site can move now.
                let waiting: Vec<GridJobId> = self
                    .jobs
                    .iter()
                    .filter(|(_, j)| matches!(j.phase, Phase::NeedSite))
                    .map(|(id, _)| *id)
                    .collect();
                for job in waiting {
                    self.begin_submit(ctx, job);
                }
            }
        }
    }
}
