//! Resource discovery and scheduling strategies (paper §4.4).
//!
//! "A simple approach, which we used in the initial implementation, is to
//! employ a user-supplied list of GRAM servers... A more sophisticated
//! approach is to construct a personal resource broker that runs as part
//! of the Condor-G agent and combines information about user authorization,
//! application requirements and resource status (obtained from MDS)...
//! One promising approach... is to use the Condor Matchmaking framework."
//!
//! [`StaticListBroker`] is the former; [`MdsBroker`] is the latter — it
//! keeps a cache of GIIS ads (refreshed by the GridManager's periodic
//! queries) and picks targets by ClassAd matchmaking and rank, following
//! the Vazhkudai et al. pattern the paper cites.
//!
//! [`AdaptiveBroker`] wraps either one with the grid-weather quarantine
//! loop: sites the [`SiteHealthTracker`] currently quarantines are added
//! to the exclusion list, so work drains to healthy sites and the sick
//! one is only re-tried once its probation opens.

use crate::api::GridJobSpec;
use classads::{rank, symmetric_match, ClassAd};
use gridsim::obs::{HealthEvent, SiteHealthTracker, SiteWeather};
use gridsim::{Addr, SimTime};

/// A known gatekeeper: its contact address plus a site description ad.
#[derive(Clone, Debug)]
pub struct GatekeeperInfo {
    /// Site name (for logs).
    pub site: String,
    /// The gatekeeper component.
    pub addr: Addr,
    /// Description used for matchmaking (may be empty for static lists).
    pub ad: ClassAd,
}

/// Chooses where the next submission (or resubmission) of a job goes.
pub trait Broker: Send + 'static {
    /// Pick a gatekeeper for `spec`, avoiding the sites in `exclude`
    /// (recent failures there). `None` = nothing suitable right now.
    fn select(&mut self, spec: &GridJobSpec, exclude: &[String]) -> Option<GatekeeperInfo>;

    /// Feed a fresh batch of resource ads (from an MDS query). Static
    /// brokers ignore this.
    fn update_ads(&mut self, _ads: Vec<(Addr, ClassAd)>, _at: SimTime) {}

    /// Record submission feedback so load spreads (a site just received a
    /// job / just failed one).
    fn note_submission(&mut self, _site: &str) {}

    /// Feed a grid-weather snapshot; returns any health transitions it
    /// triggered (so the caller can trace them). Non-adaptive brokers
    /// ignore the weather and report none.
    fn observe_weather(&mut self, _rows: &[SiteWeather], _now: SimTime) -> Vec<HealthEvent> {
        Vec::new()
    }
}

/// Round-robin over a user-supplied list of GRAM servers, skipping
/// excluded sites.
pub struct StaticListBroker {
    servers: Vec<GatekeeperInfo>,
    cursor: usize,
}

impl StaticListBroker {
    /// A broker over the given servers (order = initial preference).
    pub fn new(servers: Vec<GatekeeperInfo>) -> StaticListBroker {
        StaticListBroker { servers, cursor: 0 }
    }
}

impl Broker for StaticListBroker {
    fn select(&mut self, spec: &GridJobSpec, exclude: &[String]) -> Option<GatekeeperInfo> {
        let _ = spec;
        if self.servers.is_empty() {
            return None;
        }
        for i in 0..self.servers.len() {
            let idx = (self.cursor + i) % self.servers.len();
            let candidate = &self.servers[idx];
            if !exclude.contains(&candidate.site) {
                self.cursor = idx + 1;
                return Some(candidate.clone());
            }
        }
        // Everything is excluded: fall back to plain round-robin rather
        // than refusing to run the job anywhere.
        let idx = self.cursor % self.servers.len();
        self.cursor += 1;
        Some(self.servers[idx].clone())
    }
}

/// The personal resource broker: matchmaking over cached MDS ads.
///
/// Site ads must carry a `Gatekeeper` attribute (encoded with
/// [`mds::addr_to_attr`]) naming the site's gatekeeper. Job requirements
/// and rank come from the spec; ads older than `max_age` are ignored.
pub struct MdsBroker {
    ads: Vec<(Addr, ClassAd, SimTime)>,
    max_age: gridsim::Duration,
    /// Jobs steered to each site since the last ad refresh (keeps a burst
    /// of submissions from all landing on the site that looked best at the
    /// last poll).
    recent: std::collections::HashMap<String, u32>,
}

impl MdsBroker {
    /// A broker dropping ads older than `max_age`.
    pub fn new(max_age: gridsim::Duration) -> MdsBroker {
        MdsBroker {
            ads: Vec::new(),
            max_age,
            recent: Default::default(),
        }
    }

    fn job_ad(spec: &GridJobSpec) -> ClassAd {
        let mut ad = ClassAd::new()
            .with("Cpus", i64::from(spec.count))
            .with("RuntimeEstimate", spec.runtime.as_secs_f64());
        if let Some(req) = &spec.requirements {
            ad.set_parsed("Requirements", req).ok();
        }
        if let Some(r) = &spec.rank {
            ad.set_parsed("Rank", r).ok();
        }
        ad
    }
}

impl Broker for MdsBroker {
    fn select(&mut self, spec: &GridJobSpec, exclude: &[String]) -> Option<GatekeeperInfo> {
        let job_ad = MdsBroker::job_ad(spec);
        let mut best: Option<(f64, f64, GatekeeperInfo)> = None;
        for (gk, ad, _) in &self.ads {
            let site = ad.get_str("Name").unwrap_or_default();
            if exclude.contains(&site) {
                continue;
            }
            if !symmetric_match(&job_ad, ad) {
                continue;
            }
            let r = rank(&job_ad, ad);
            // Tiebreak rank by remaining headroom after recent steering.
            let free = ad.get_int("FreeCpus").unwrap_or(0) as f64;
            let pressure = *self.recent.get(&site).unwrap_or(&0) as f64;
            let headroom = free - pressure;
            let better = match &best {
                None => true,
                Some((br, bh, _)) => r > *br || (r == *br && headroom > *bh),
            };
            if better {
                best = Some((
                    r,
                    headroom,
                    GatekeeperInfo {
                        site,
                        addr: *gk,
                        ad: ad.clone(),
                    },
                ));
            }
        }
        best.map(|(_, _, info)| info)
    }

    fn update_ads(&mut self, ads: Vec<(Addr, ClassAd)>, at: SimTime) {
        self.ads = ads.into_iter().map(|(a, ad)| (a, ad, at)).collect();
        self.recent.clear();
        // Age-out happens on refresh: the GridManager polls MDS often
        // enough that a missing refresh means the directory lost the site.
        self.ads.retain(|(_, _, t)| at - *t <= self.max_age);
    }

    fn note_submission(&mut self, site: &str) {
        *self.recent.entry(site.to_string()).or_insert(0) += 1;
    }
}

/// Weather-driven wrapper around any inner broker.
///
/// Selection extends the caller's exclusion list with every currently
/// quarantined site; if that leaves nothing (e.g. all sites sick), it
/// falls back to the inner broker with the original exclusions — a wrong
/// pick beats stranding the job forever.
pub struct AdaptiveBroker {
    inner: Box<dyn Broker>,
    tracker: SiteHealthTracker,
}

impl AdaptiveBroker {
    /// Wrap `inner` with the given health tracker.
    pub fn new(inner: Box<dyn Broker>, tracker: SiteHealthTracker) -> AdaptiveBroker {
        AdaptiveBroker { inner, tracker }
    }

    /// The health tracker's view (for reports/tests).
    pub fn tracker(&self) -> &SiteHealthTracker {
        &self.tracker
    }
}

impl Broker for AdaptiveBroker {
    fn select(&mut self, spec: &GridJobSpec, exclude: &[String]) -> Option<GatekeeperInfo> {
        let quarantined = self.tracker.quarantined_sites();
        if quarantined.is_empty() {
            return self.inner.select(spec, exclude);
        }
        let mut extended = exclude.to_vec();
        extended.extend(quarantined);
        match self.inner.select(spec, &extended) {
            // The static broker's all-excluded fallback can still hand back
            // a quarantined site; treat that as "nothing healthy" too.
            Some(pick) if !self.tracker.is_quarantined(&pick.site) => Some(pick),
            _ => self.inner.select(spec, exclude),
        }
    }

    fn update_ads(&mut self, ads: Vec<(Addr, ClassAd)>, at: SimTime) {
        self.inner.update_ads(ads, at);
    }

    fn note_submission(&mut self, site: &str) {
        self.inner.note_submission(site);
    }

    fn observe_weather(&mut self, rows: &[SiteWeather], now: SimTime) -> Vec<HealthEvent> {
        self.tracker.observe(rows, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::time::Duration;
    use gridsim::{CompId, NodeId};

    fn addr(n: u32) -> Addr {
        Addr {
            node: NodeId(n),
            comp: CompId(n),
        }
    }

    fn spec() -> GridJobSpec {
        GridJobSpec::grid("j", "/x", Duration::from_mins(10))
    }

    fn info(site: &str, n: u32) -> GatekeeperInfo {
        GatekeeperInfo {
            site: site.into(),
            addr: addr(n),
            ad: ClassAd::new(),
        }
    }

    #[test]
    fn static_list_round_robins() {
        let mut b = StaticListBroker::new(vec![info("a", 1), info("b", 2), info("c", 3)]);
        let picks: Vec<String> = (0..6)
            .map(|_| b.select(&spec(), &[]).unwrap().site)
            .collect();
        assert_eq!(picks, ["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn static_list_skips_excluded() {
        let mut b = StaticListBroker::new(vec![info("a", 1), info("b", 2)]);
        let pick = b.select(&spec(), &["a".to_string()]).unwrap();
        assert_eq!(pick.site, "b");
        // All excluded: still yields something (round-robin fallback).
        let pick = b
            .select(&spec(), &["a".to_string(), "b".to_string()])
            .unwrap();
        assert!(["a", "b"].contains(&pick.site.as_str()));
    }

    #[test]
    fn empty_static_list_yields_none() {
        let mut b = StaticListBroker::new(vec![]);
        assert!(b.select(&spec(), &[]).is_none());
    }

    fn site_ad(name: &str, free: i64, arch: &str) -> ClassAd {
        ClassAd::new()
            .with("Name", name)
            .with("FreeCpus", free)
            .with("TotalCpus", 64i64)
            .with("Arch", arch)
    }

    #[test]
    fn mds_broker_matches_requirements_and_ranks() {
        let mut b = MdsBroker::new(Duration::from_mins(30));
        b.update_ads(
            vec![
                (addr(1), site_ad("intel-small", 2, "INTEL")),
                (addr(2), site_ad("intel-big", 40, "INTEL")),
                (addr(3), site_ad("sparc", 100, "SUN4u")),
            ],
            SimTime::ZERO,
        );
        let spec = spec()
            .with_requirements("TARGET.Arch == \"INTEL\" && TARGET.FreeCpus > 0")
            .with_rank("TARGET.FreeCpus");
        let pick = b.select(&spec, &[]).unwrap();
        assert_eq!(pick.site, "intel-big");
        // Exclusion forces second best.
        let pick = b.select(&spec, &["intel-big".to_string()]).unwrap();
        assert_eq!(pick.site, "intel-small");
        // Nothing matches when requirements rule all out.
        let impossible = super::super::api::GridJobSpec::grid("j", "/x", Duration::from_mins(1))
            .with_requirements("TARGET.Arch == \"ALPHA\"");
        assert!(b.select(&impossible, &[]).is_none());
    }

    #[test]
    fn mds_broker_spreads_load_between_refreshes() {
        let mut b = MdsBroker::new(Duration::from_mins(30));
        b.update_ads(
            vec![
                (addr(1), site_ad("a", 3, "INTEL")),
                (addr(2), site_ad("b", 2, "INTEL")),
            ],
            SimTime::ZERO,
        );
        let spec = spec(); // no rank: headroom decides
        let mut picks = Vec::new();
        for _ in 0..5 {
            let p = b.select(&spec, &[]).unwrap();
            b.note_submission(&p.site);
            picks.push(p.site);
        }
        // 3 to a, 2 to b — proportional to free CPUs.
        assert_eq!(picks.iter().filter(|s| *s == "a").count(), 3);
        assert_eq!(picks.iter().filter(|s| *s == "b").count(), 2);
    }

    #[test]
    fn mds_broker_with_no_ads_yields_none() {
        let mut b = MdsBroker::new(Duration::from_mins(30));
        assert!(b.select(&spec(), &[]).is_none());
    }

    fn weather_row(site: &str, failures: u64) -> SiteWeather {
        SiteWeather {
            site: site.to_string(),
            submits: 0,
            rejected: 0,
            completed: 0,
            success_rate: None,
            queue_depth: None,
            median_wait_secs: None,
            commit_timeout_rate: None,
            attempt_failures: failures,
        }
    }

    #[test]
    fn adaptive_broker_routes_around_quarantined_sites() {
        let inner = StaticListBroker::new(vec![info("a", 1), info("b", 2), info("c", 3)]);
        let mut b = AdaptiveBroker::new(Box::new(inner), SiteHealthTracker::default());
        // Site `a` fails: weather shows an attempt failure → quarantine.
        let evs = b.observe_weather(
            &[
                weather_row("a", 1),
                weather_row("b", 0),
                weather_row("c", 0),
            ],
            SimTime::ZERO,
        );
        assert_eq!(evs.len(), 1);
        assert!(b.tracker().is_quarantined("a"));
        // Selection never lands on `a` while it is quarantined.
        let picks: Vec<String> = (0..4)
            .map(|_| b.select(&spec(), &[]).unwrap().site)
            .collect();
        assert!(picks.iter().all(|s| s != "a"), "{picks:?}");
    }

    #[test]
    fn adaptive_broker_falls_back_when_everything_is_sick() {
        let inner = StaticListBroker::new(vec![info("a", 1)]);
        let mut b = AdaptiveBroker::new(Box::new(inner), SiteHealthTracker::default());
        b.observe_weather(&[weather_row("a", 2)], SimTime::ZERO);
        assert!(b.tracker().is_quarantined("a"));
        // The only site is quarantined: still pick it rather than strand
        // the job.
        assert_eq!(b.select(&spec(), &[]).unwrap().site, "a");
    }

    #[test]
    fn non_adaptive_brokers_ignore_weather() {
        let mut b = StaticListBroker::new(vec![info("a", 1)]);
        assert!(b
            .observe_weather(&[weather_row("a", 5)], SimTime::ZERO)
            .is_empty());
        assert_eq!(b.select(&spec(), &[]).unwrap().site, "a");
    }
}
