//! Simulated e-mail: the asynchronous notification channel of §4.1/§4.3
//! ("sends the user an e-mail message explaining that their job cannot run
//! again until their credentials are refreshed").

use gridsim::prelude::*;
use gridsim::AnyMsg;
use serde::{Deserialize, Serialize};

/// An e-mail message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Email {
    /// Recipient (user name).
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body.
    pub body: String,
}

/// The mail spool component: collects messages into stable storage so tests
/// and experiments can read a user's inbox (`mail/<user>`).
#[derive(Default)]
pub struct Mailer {
    delivered: u64,
}

impl Mailer {
    /// An empty spool.
    pub fn new() -> Mailer {
        Mailer::default()
    }

    /// Stable-storage key of a user's inbox on the mailer's node.
    pub fn inbox_key(user: &str) -> String {
        format!("mail/{user}")
    }
}

impl Component for Mailer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Ok(mail) = msg.downcast::<Email>() else {
            return;
        };
        self.delivered += 1;
        ctx.metrics().incr("mail.delivered", 1);
        ctx.trace("mail", format!("to={} subject={}", mail.to, mail.subject));
        let key = Mailer::inbox_key(&mail.to);
        let node = ctx.node();
        let mut inbox: Vec<(String, String)> = ctx.store().get(node, &key).unwrap_or_default();
        inbox.push((mail.subject.clone(), mail.body.clone()));
        ctx.store().put(node, &key, &inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{Config, World};

    struct Sender {
        mailer: Addr,
    }

    impl Component for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(
                self.mailer,
                Email {
                    to: "jane".into(),
                    subject: "job gj1 held".into(),
                    body: "credentials expired; run grid-proxy-init".into(),
                },
            );
            ctx.send(
                self.mailer,
                Email {
                    to: "jane".into(),
                    subject: "jobs complete".into(),
                    body: "done".into(),
                },
            );
        }
    }

    #[test]
    fn inbox_accumulates() {
        let mut w = World::new(Config::default().seed(1));
        let nm = w.add_node("mail");
        let ns = w.add_node("submit");
        let mailer = w.add_component(nm, "mailer", Mailer::new());
        w.add_component(ns, "sender", Sender { mailer });
        w.run_until_quiescent();
        let inbox: Vec<(String, String)> = w.store().get(nm, &Mailer::inbox_key("jane")).unwrap();
        assert_eq!(inbox.len(), 2);
        assert!(inbox[0].0.contains("held"));
        assert_eq!(w.metrics().counter("mail.delivered"), 2);
    }
}
