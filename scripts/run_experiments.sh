#!/usr/bin/env bash
# Regenerate every paper artifact. Outputs are recorded in EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."
BINS=(exp_figure1 exp_figure2 exp_two_phase exp_fault_tolerance exp_credentials \
      exp_glidein exp_broker exp_gcat exp_cms exp_flocking exp_ckpt_interval \
      exp_migration exp_qap)
mkdir -p target/experiments
for b in "${BINS[@]}"; do
  echo "=== running $b ==="
  cargo run --release -q -p bench --bin "$b" | tee "target/experiments/$b.txt"
done
echo "all experiment outputs in target/experiments/"
