//! Chaos on the submit machine itself — the paper's headline §4.2 claim:
//! "if the machine crashes, Condor-G can restart and reconnect to the
//! GRAM server... obtain the current job status". Random crash/repair
//! schedules on the agent's own machine must never lose a job and must
//! not re-execute work the sites already did (recovery reattaches via
//! probes instead of resubmitting).

use condor_g_suite::classads::ClassAd;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::GmConfig;
use condor_g_suite::condor_g::scheduler::SchedulerConfig;
use condor_g_suite::condor_g::{GatekeeperInfo, Mailer, Scheduler, StaticListBroker};
use condor_g_suite::gass::GassServer;
use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::rng::SimRng;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

const JOBS: usize = 24;

fn chaos_run(seed: u64) -> (u64, u64, u64) {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![SiteSpec::pbs("alpha", 8), SiteSpec::lsf("beta", 8)],
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });
    let node = tb.submit;

    // Boot hook: recover GASS disk, mailer, and the scheduler (which
    // re-creates the GridManager from its logs).
    {
        let sites: Vec<_> = tb
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.gatekeeper))
            .collect();
        let proxy = tb.proxy.clone();
        let gass = tb.gass;
        let mailer = tb.mailer;
        let trust = tb.trust.clone();
        tb.world.set_boot(node, move |b| {
            b.add_component(
                "gass",
                GassServer::recover(trust.clone(), b.store(), b.node()),
            );
            b.add_component("mailer", Mailer::new());
            let broker = Box::new(StaticListBroker::new(
                sites
                    .iter()
                    .map(|(name, addr)| GatekeeperInfo {
                        site: name.clone(),
                        addr: *addr,
                        ad: ClassAd::new(),
                    })
                    .collect(),
            ));
            let config = SchedulerConfig {
                user: "jane".into(),
                credential: proxy.clone(),
                gass,
                pool_schedd: None,
                mailer: Some(mailer),
                user_addr: None,
                gm: GmConfig {
                    user: "jane".into(),
                    ..GmConfig::default()
                },
                email_on_termination: false,
                lean: false,
            };
            b.add_component(
                "scheduler",
                Scheduler::recover(config, broker, b.store(), b.node()),
            );
        });
    }

    // Random submit-machine crashes: mean 6h up, 30min down, for 2 days.
    let mut chaos_rng = SimRng::new(seed ^ 0x5AB);
    let plan = FaultPlan::random_crashes(
        &mut chaos_rng,
        &[node],
        Duration::from_hours(6),
        Duration::from_mins(30),
        SimTime::ZERO + Duration::from_days(2),
    );
    tb.world.apply_fault_plan(&plan);

    let spec = GridJobSpec::grid("task", "/home/jane/app.exe", Duration::from_mins(90))
        .with_stdout(20_000);
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(3));

    let m = tb.world.metrics();
    (
        m.counter("condor_g.jobs_done"),
        m.counter("site.completed"),
        m.counter("node.crashes"),
    )
}

#[test]
fn campaigns_survive_random_submit_machine_chaos() {
    for seed in [11, 22, 33] {
        let (done, executions, crashes) = chaos_run(seed);
        assert!(
            crashes >= 2,
            "seed {seed}: chaos too tame ({crashes} crashes)"
        );
        assert_eq!(
            done, JOBS as u64,
            "seed {seed}: jobs lost to submit crashes (crashes={crashes}, executions={executions})"
        );
        // Recovery must reattach to running jobs, not resubmit them: work
        // is only ever redone when a crash caught a job before its GRAM
        // submission committed.
        assert!(
            executions <= (JOBS as u64) + 4,
            "seed {seed}: recovery duplicated work ({executions} executions for {JOBS} jobs)"
        );
    }
}

#[test]
fn outputs_survive_a_submit_crash_during_staging() {
    // Large outputs whose stage-out straddles the submit-machine outage:
    // the recovered GASS disk plus positioned writes must still deliver
    // every byte exactly once.
    let mut tb = build(TestbedConfig {
        seed: 99,
        sites: vec![SiteSpec::pbs("alpha", 8)],
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });
    let node = tb.submit;
    {
        let sites: Vec<_> = tb
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.gatekeeper))
            .collect();
        let proxy = tb.proxy.clone();
        let gass = tb.gass;
        let mailer = tb.mailer;
        let trust = tb.trust.clone();
        tb.world.set_boot(node, move |b| {
            b.add_component(
                "gass",
                GassServer::recover(trust.clone(), b.store(), b.node()),
            );
            b.add_component("mailer", Mailer::new());
            let broker = Box::new(StaticListBroker::new(
                sites
                    .iter()
                    .map(|(name, addr)| GatekeeperInfo {
                        site: name.clone(),
                        addr: *addr,
                        ad: ClassAd::new(),
                    })
                    .collect(),
            ));
            let config = SchedulerConfig {
                user: "jane".into(),
                credential: proxy.clone(),
                gass,
                pool_schedd: None,
                mailer: Some(mailer),
                user_addr: None,
                gm: GmConfig {
                    user: "jane".into(),
                    ..GmConfig::default()
                },
                email_on_termination: false,
                lean: false,
            };
            b.add_component(
                "scheduler",
                Scheduler::recover(config, broker, b.store(), b.node()),
            );
        });
    }
    // 30-minute jobs with 50 MB of stdout (~40 s of WAN transfer each):
    // the crash at t=35min lands while early finishers are staging out.
    let spec = GridJobSpec::grid("big-out", "/home/jane/app.exe", Duration::from_mins(30))
        .with_stdout(50_000_000);
    let console = UserConsole::new(tb.scheduler).submit_many(8, spec);
    tb.world.add_component(node, "console", console);
    tb.world.apply_fault_plan(&FaultPlan::new().crash_restart(
        node,
        SimTime::ZERO + Duration::from_mins(35),
        Duration::from_mins(20),
    ));
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(12));
    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.jobs_done"), 8);
    // Every output file arrived complete on the (recovered) GASS disk:
    // the agent stages job i's stdout to /condor_g/out/<i>.
    for i in 0..8u64 {
        let size = tb
            .world
            .store()
            .get::<u64>(node, &format!("gass/size/condor_g/out/gj{i}"));
        assert_eq!(
            size,
            Some(50_000_000),
            "job gj{i} output incomplete after crash"
        );
    }
    assert_eq!(
        m.counter("site.completed"),
        8,
        "staging crash duplicated execution"
    );
}
