//! Chaos runs: random crash/repair schedules on every gatekeeper machine
//! while a campaign runs. The agent must deliver every job exactly once
//! *to the user* no matter what the schedule does.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::rng::SimRng;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

const JOBS: usize = 24;

fn chaos_run(seed: u64) -> (u64, u64, u64, Vec<Vec<String>>) {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![
            SiteSpec::pbs("alpha", 8),
            SiteSpec::lsf("beta", 8),
            SiteSpec::pbs("gamma", 8),
        ],
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });
    // Interface machines crash randomly: mean 8h up, 45min down, 3 days.
    let interfaces: Vec<NodeId> = tb.sites.iter().map(|s| s.interface).collect();
    let mut chaos_rng = SimRng::new(seed ^ 0xC0A5);
    let plan = FaultPlan::random_crashes(
        &mut chaos_rng,
        &interfaces,
        Duration::from_hours(8),
        Duration::from_mins(45),
        SimTime::ZERO + Duration::from_days(3),
    );
    tb.world.apply_fault_plan(&plan);

    let spec = GridJobSpec::grid("chaos-task", "/home/jane/app.exe", Duration::from_mins(90))
        .with_stdout(50_000);
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(4));

    let m = tb.world.metrics();
    let histories = (0..JOBS as u64)
        .map(|i| UserConsole::history_of(&tb.world, node, i))
        .collect();
    (
        m.counter("condor_g.jobs_done"),
        m.counter("site.completed"),
        m.counter("node.crashes"),
        histories,
    )
}

#[test]
fn campaigns_survive_random_gatekeeper_chaos() {
    for seed in [101, 202, 303] {
        let (done, executions, crashes, histories) = chaos_run(seed);
        assert!(
            crashes >= 3,
            "seed {seed}: chaos plan too tame ({crashes} crashes)"
        );
        assert_eq!(
            done, JOBS as u64,
            "seed {seed}: jobs lost under chaos (crashes={crashes}, executions={executions})"
        );
        for (i, h) in histories.iter().enumerate() {
            // Exactly one terminal report per job, and it is Done.
            let terminals = h
                .iter()
                .filter(|e| {
                    e.starts_with("Done") || e.starts_with("Failed") || e.starts_with("Removed")
                })
                .count();
            assert_eq!(terminals, 1, "seed {seed} job {i}: {h:?}");
            assert_eq!(
                h.last().map(String::as_str),
                Some("Done"),
                "seed {seed} job {i}: {h:?}"
            );
        }
        // Work may legitimately be re-done after a genuine failure, but
        // never wildly (recovery reattaches instead of resubmitting).
        assert!(
            executions <= (JOBS as u64) + 4,
            "seed {seed}: excessive duplicate executions ({executions} for {JOBS} jobs)"
        );
    }
}

#[test]
fn chaos_with_partitions_as_well() {
    let mut tb = build(TestbedConfig {
        seed: 404,
        sites: vec![SiteSpec::pbs("alpha", 8), SiteSpec::pbs("beta", 8)],
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });
    let mut plan = FaultPlan::new();
    // Alternate partitions and crashes through the first day.
    let all_site_nodes: Vec<NodeId> = tb
        .sites
        .iter()
        .flat_map(|s| [s.interface, s.cluster])
        .collect();
    for k in 0..6u64 {
        let start = SimTime::ZERO + Duration::from_hours(2 + 3 * k);
        plan = plan.partition_window(
            vec![tb.submit],
            all_site_nodes.clone(),
            start,
            Duration::from_mins(25),
        );
    }
    plan = plan.crash_restart(
        tb.sites[0].interface,
        SimTime::ZERO + Duration::from_hours(5),
        Duration::from_hours(1),
    );
    tb.world.apply_fault_plan(&plan.sorted());

    let spec =
        GridJobSpec::grid("t", "/home/jane/app.exe", Duration::from_hours(2)).with_stdout(10_000);
    let console = UserConsole::new(tb.scheduler).submit_many(12, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(2));
    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.jobs_done"), 12);
    assert_eq!(
        m.counter("site.completed"),
        12,
        "partitions caused duplicated work"
    );
    let _ = node;
}
