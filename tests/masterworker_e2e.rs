//! Miniature Experience-1 run: a Master–Worker campaign over glideins at
//! heterogeneous sites, with real failures in the mix.

use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::rng::Dist;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::{MwConfig, MwMaster};

#[test]
fn master_worker_campaign_completes() {
    let mut tb = build(TestbedConfig {
        seed: 31,
        sites: vec![
            SiteSpec::pbs("pbs-cluster", 16),
            SiteSpec::lsf("lsf-super", 16),
            SiteSpec::condor_pool("campus-pool", 16),
        ],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(8, Duration::from_hours(12));
    let master = MwMaster::new(
        tb.scheduler,
        MwConfig {
            target_outstanding: 24,
            total_tasks: Some(200),
            task_runtime: Dist::LogNormal {
                median: 900.0,
                sigma: 0.6,
            },
            ..MwConfig::default()
        },
    );
    let node = tb.submit;
    tb.world.add_component(node, "mw-master", master);
    tb.world
        .run_until(SimTime::ZERO + Duration::from_days(1) + Duration::from_hours(12));

    assert_eq!(
        MwMaster::completed(&tb.world, node),
        200,
        "dispatched={:?} failures={:?} glideins={} vacated={}",
        tb.world.store().get::<u64>(node, "mw/dispatched"),
        tb.world.store().get::<u64>(node, "mw/failed_attempts"),
        tb.world.metrics().counter("glidein.started"),
        tb.world.metrics().counter("schedd.vacated"),
    );
    let m = tb.world.metrics();
    // Glideins spanned all three sites.
    assert!(m.counter("glidein.started") >= 24);
    // Concurrency: with 24 outstanding and ≥24 glideins, the busy-startd
    // gauge must have reached a healthy level.
    let peak = m
        .series("condor.busy_startds")
        .map(|s| s.max())
        .unwrap_or(0.0);
    assert!(peak >= 16.0, "peak concurrency only {peak}");
    // Real preemption happened at the campus pool and was survived.
    assert!(m.counter("site.vacated") + m.counter("condor.vacated") > 0);
}
