//! Sanity checks on the shared testbed builder itself.

use condor_g_suite::harness::{build, paper_sites, SiteKind, TestbedConfig};

#[test]
fn paper_sites_match_the_paper_mix() {
    let sites = paper_sites();
    assert_eq!(sites.len(), 10, "ten sites");
    let pools = sites
        .iter()
        .filter(|s| matches!(s.kind, SiteKind::CondorPool { .. }))
        .count();
    assert_eq!(pools, 8, "eight Condor pools");
    assert_eq!(sites.iter().filter(|s| s.kind == SiteKind::Pbs).count(), 1);
    assert_eq!(sites.iter().filter(|s| s.kind == SiteKind::Lsf).count(), 1);
    let cpus: u32 = sites.iter().map(|s| s.cpus).sum();
    assert!(cpus > 2500, "paper: over 2,500 CPUs, got {cpus}");
}

#[test]
fn default_testbed_builds_and_idles_quietly() {
    use condor_g_suite::gridsim::prelude::*;
    let mut tb = build(TestbedConfig::default());
    assert_eq!(tb.sites.len(), 2);
    // With no jobs, a day passes with only housekeeping traffic.
    tb.world.run_until(SimTime::ZERO + Duration::from_days(1));
    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.submitted"), 0);
    assert_eq!(m.counter("gram.submits"), 0);
}

#[test]
fn full_testbed_wires_every_optional_subsystem() {
    let tb = build(TestbedConfig {
        with_mds: true,
        with_personal_pool: true,
        with_myproxy: true,
        ..TestbedConfig::default()
    });
    assert!(tb.giis.is_some());
    assert!(tb.myproxy.is_some());
    assert!(tb.collector.is_some());
    assert!(tb.pool_schedd.is_some());
}
