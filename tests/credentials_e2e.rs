//! Credential-lifetime tests (paper §4.3): expiry detection, hold + email,
//! user refresh, and MyProxy auto-refresh.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::{GmConfig, MyProxySettings};
use condor_g_suite::condor_g::Mailer;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gsi::{MyProxyRequest, ProxyCredential};
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn long_job() -> GridJobSpec {
    // 20-hour jobs against a 12-hour proxy: expiry hits mid-run.
    GridJobSpec::grid("longrun", "/home/jane/app.exe", Duration::from_hours(20))
}

#[test]
fn expiry_holds_jobs_and_emails_then_refresh_resumes() {
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 8)],
        proxy_lifetime: Duration::from_hours(12),
        ..TestbedConfig::default()
    });
    // The user refreshes 14 hours in (after the hold).
    let fresh = tb.identity.new_proxy(
        SimTime::ZERO + Duration::from_hours(14),
        Duration::from_hours(24),
    );
    let mut console = UserConsole::new(tb.scheduler).submit_many(3, long_job());
    console.refresh_at = Some((Duration::from_hours(14), fresh));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(36));

    let m = tb.world.metrics();
    assert_eq!(m.counter("gm.credential_holds"), 1, "no hold happened");
    assert_eq!(m.counter("condor_g.proxy_refreshes"), 1);
    // The refreshed proxy was re-forwarded to remote JobManagers.
    assert!(m.counter("gram.credential_refreshes") >= 3);
    // All jobs finished after the refresh.
    assert_eq!(m.counter("condor_g.jobs_done"), 3);
    for i in 0..3 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert!(
            h.iter().any(|e| e.starts_with("Held(credentials expired")),
            "job {i} never held: {h:?}"
        );
        assert_eq!(h.last().map(String::as_str), Some("Done"), "job {i}: {h:?}");
    }
    // The hold e-mail (and the earlier alarm) landed in the inbox.
    let inbox: Vec<(String, String)> = tb
        .world
        .store()
        .get(tb.mail_node, &Mailer::inbox_key("jane"))
        .unwrap();
    assert!(
        inbox.iter().any(|(s, _)| s.contains("expiring soon")),
        "no alarm email: {inbox:?}"
    );
    assert!(
        inbox.iter().any(|(s, _)| s.contains("held")),
        "no hold email: {inbox:?}"
    );
}

#[test]
fn myproxy_auto_refresh_avoids_the_hold() {
    let tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 8)],
        proxy_lifetime: Duration::from_hours(12),
        with_myproxy: true,
        gm: GmConfig::default(),
        ..TestbedConfig::default()
    });
    let myproxy = tb.myproxy.expect("myproxy built");

    // Deposit a week-long credential at the MyProxy server, then rebuild
    // the scheduler's GridManager config to auto-refresh from it. The
    // harness wires GmConfig before we know the server address, so set it
    // by re-adding the scheduler... simpler: deposit + configure via a
    // fresh testbed below.
    let long = tb.identity.new_proxy(SimTime::ZERO, Duration::from_days(7));

    // Build the real testbed with MyProxy settings in place.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 8)],
        proxy_lifetime: Duration::from_hours(12),
        with_myproxy: true,
        gm: GmConfig {
            myproxy: Some(MyProxySettings {
                server: myproxy,
                account: "jane".into(),
                passphrase: 4242,
                lifetime: Duration::from_hours(12),
                refresh_before: Duration::from_hours(2),
            }),
            ..GmConfig::default()
        },
        ..TestbedConfig::default()
    });
    // Seed the vault (as the user would with myproxy-init).
    let server = tb.myproxy.expect("myproxy built");
    tb.world.post(
        server,
        MyProxyRequest::Store {
            user: "jane".into(),
            passphrase: 4242,
            credential: long,
        },
    );
    let console = UserConsole::new(tb.scheduler).submit_many(3, long_job());
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(30));

    let m = tb.world.metrics();
    assert_eq!(m.counter("gm.credential_holds"), 0, "hold despite MyProxy");
    assert!(m.counter("gm.myproxy_refreshes") >= 1, "never refreshed");
    assert_eq!(m.counter("condor_g.jobs_done"), 3);
    for i in 0..3 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert!(
            !h.iter().any(|e| e.starts_with("Held")),
            "job {i} was held despite MyProxy: {h:?}"
        );
        assert_eq!(h.last().map(String::as_str), Some("Done"));
    }
}

#[test]
fn expired_proxy_cannot_authenticate_anywhere() {
    // Sanity at the protocol level: once past expiry, GRAM refuses the
    // credential outright (defense in depth under the agent's hold logic).
    use condor_g_suite::gram::proto::{GramReply, GramRequest};
    use condor_g_suite::gridsim::{Addr, AnyMsg};

    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 4)],
        proxy_lifetime: Duration::from_hours(1),
        ..TestbedConfig::default()
    });
    struct LateSubmitter {
        gatekeeper: Addr,
        credential: ProxyCredential,
    }
    impl Component for LateSubmitter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_hours(2), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(
                self.gatekeeper,
                GramRequest::Submit {
                    seq: 1,
                    credential: self.credential.clone(),
                    rsl: "&(executable=/x)".into(),
                    callback: ctx.self_addr(),
                    gass: condor_g_suite::gass::GassUrl::gass(ctx.self_addr(), ""),
                    capability: None,
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(GramReply::SubmitFailed { error, .. }) = msg.downcast_ref::<GramReply>() {
                let node = ctx.node();
                ctx.store().put(node, "refused", &error.to_string());
            }
        }
    }
    let gk = tb.sites[0].gatekeeper;
    let cred = tb.proxy.clone();
    let n = tb.world.add_node("attacker");
    tb.world.add_component(
        n,
        "late",
        LateSubmitter {
            gatekeeper: gk,
            credential: cred,
        },
    );
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(3));
    let refused: String = tb.world.store().get(n, "refused").unwrap();
    assert!(refused.contains("authentication failed"), "{refused}");
}
