//! GlideIn tests (paper §5, Figure 2): GRAM-launched startds join the
//! personal pool; matchmaking dispatches jobs onto them; remote I/O flows
//! through shadows; checkpointing survives revocation; daemons respect
//! leases and idle timeouts.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn pool_job(secs: u64) -> GridJobSpec {
    GridJobSpec::pool("worker", "/home/jane/worker.exe", Duration::from_secs(secs))
        .with_remote_io(120.0, 64 * 1024)
}

#[test]
fn figure2_glidein_path_runs_pool_jobs() {
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("siteA", 8), SiteSpec::pbs("siteB", 8)],
        with_personal_pool: true,
        trace: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(4, Duration::from_hours(8));
    let console = UserConsole::new(tb.scheduler).submit_many(16, pool_job(1800));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(8));

    let m = tb.world.metrics();
    // Glideins came up at both sites through plain GRAM.
    assert!(
        m.counter("glidein.started") >= 8,
        "only {} glideins",
        m.counter("glidein.started")
    );
    assert!(m.counter("gram.submits") >= 8);
    // All pool jobs ran to completion on glidein machines.
    assert_eq!(m.counter("condor_g.jobs_done"), 16);
    assert_eq!(m.counter("schedd.completed"), 16);
    // Remote system calls flowed back to the shadows (Figure 2's
    // "Redirected System Call Data").
    assert!(
        m.counter("condor.syscall_batches") > 0,
        "no remote I/O happened"
    );
    assert!(m.counter("shadow.io_bytes") > 0);
    for i in 0..16 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert_eq!(h.last().map(String::as_str), Some("Done"), "job {i}: {h:?}");
    }
}

#[test]
fn glideins_respect_lease_and_idle_timeout() {
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("siteA", 8)],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    // Short 1-hour leases, 30-minute idle timeout, nothing to run.
    let factory = tb.add_glidein_factory(3, Duration::from_hours(1));
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(45));
    // Idle glideins shut themselves down before their lease would end.
    let m = tb.world.metrics();
    assert!(m.counter("glidein.started") >= 3);
    assert!(
        m.counter("condor.startd_exits") >= 3,
        "idle daemons never exited: {}",
        m.counter("condor.startd_exits")
    );
    let _ = factory;
}

#[test]
fn checkpointing_survives_allocation_loss() {
    // Glideins at a churning Condor-pool site: allocations get revoked
    // under running jobs; checkpoint+migrate still finishes everything.
    let mut tb = build(TestbedConfig {
        seed: 77,
        sites: vec![SiteSpec::condor_pool("pool", 12)],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(6, Duration::from_hours(6));
    // 4-hour jobs: longer than the mean time between revocations.
    let console = UserConsole::new(tb.scheduler).submit_many(6, pool_job(4 * 3600));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(4));

    let m = tb.world.metrics();
    assert_eq!(
        m.counter("condor_g.jobs_done"),
        6,
        "vacated={} checkpoints={} glideins={} watchdog={}",
        m.counter("schedd.vacated"),
        m.counter("condor.checkpoints"),
        m.counter("glidein.started"),
        m.counter("shadow.watchdog_vacates"),
    );
    assert!(m.counter("condor.checkpoints") > 0, "never checkpointed");
    let _ = node;
}
