//! End-to-end forensics: run the simulator with `--trace-out`, feed the
//! trace to the `condor-g-trace` analyzer, and check both that the trace
//! is a deterministic artifact and that the analyzer reaches the right
//! verdicts about the injected faults.

use condor_g_trace::{parse, Forensics};
use std::path::PathBuf;
use std::process::Command;

/// Run `condor-g-sim --trace-out <out> scenarios/<scenario>`.
fn run_with_trace(scenario: &str, out: &PathBuf) {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let res = Command::new(exe)
        .arg("--trace-out")
        .arg(out)
        .arg(format!(
            "{}/scenarios/{scenario}",
            env!("CARGO_MANIFEST_DIR")
        ))
        .output()
        .expect("binary runs");
    assert!(
        res.status.success(),
        "{scenario} exited {:?}: {}",
        res.status.code(),
        String::from_utf8_lossy(&res.stderr)
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forensics-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Same seed, same scenario => byte-identical trace. This is stronger than
/// the metric-level determinism checks: every record, every causal edge,
/// every fault injection must replay in the same order with the same ids.
#[test]
fn outage_trace_is_byte_identical_across_runs() {
    let dir = temp_dir("determinism");
    let a = dir.join("run-a.jsonl");
    let b = dir.join("run-b.jsonl");
    run_with_trace("outage.scn", &a);
    run_with_trace("outage.scn", &b);
    let bytes_a = std::fs::read(&a).expect("trace a");
    let bytes_b = std::fs::read(&b).expect("trace b");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!bytes_a.is_empty(), "trace is empty");
    assert_eq!(
        bytes_a, bytes_b,
        "same-seed outage runs produced different traces"
    );
}

/// The outage scenario takes east-cluster's gatekeeper down across the
/// submission window, so every job routed there exhausts its submit
/// retransmits and fails over. The analyzer must (a) see those
/// resubmissions, and (b) attribute every one of them to the injected
/// gatekeeper crash.
#[test]
fn analyzer_attributes_outage_resubmissions_to_the_injected_crash() {
    let dir = temp_dir("attribution");
    let path = dir.join("outage.jsonl");
    run_with_trace("outage.scn", &path);
    let text = std::fs::read_to_string(&path).expect("trace read");
    let _ = std::fs::remove_dir_all(&dir);

    let records = parse(&text).expect("trace parses");
    let f = Forensics::build(records);
    assert!(!f.dag.is_empty(), "trace has no causal provenance");

    // Every job reached a terminal milestone (nothing stuck)...
    assert_eq!(f.jobs.len(), 12, "expected 12 jobs in the trace");
    assert!(
        f.jobs.values().all(|j| j.terminal.is_some()),
        "a job never reached a terminal state"
    );
    // ...and the submission-window outage really forced failovers.
    let resubmitted: Vec<u64> = f.resubmitted_jobs().map(|j| j.job).collect();
    assert!(
        !resubmitted.is_empty(),
        "outage.scn produced no resubmissions — the forensics assertion \
         below would be vacuous"
    );

    let causes = f.root_causes();
    for job in &resubmitted {
        let a = causes
            .iter()
            .find(|a| a.job == *job)
            .unwrap_or_else(|| panic!("gj{job} resubmitted but has no attribution"));
        let (kind, detail, _) = a
            .cause
            .as_ref()
            .unwrap_or_else(|| panic!("gj{job} failure unattributed: {a:?}"));
        assert!(
            kind.starts_with("fault."),
            "gj{job} blamed on a non-fault record: {kind} {detail}"
        );
        assert!(
            detail.contains("gk.east-cluster"),
            "gj{job} blamed on the wrong fault: {kind} {detail}"
        );
        assert_eq!(
            a.site.as_deref(),
            Some("east-cluster"),
            "gj{job}'s failed attempt should be against east-cluster"
        );
    }

    // Critical paths exist for every job, and their blame sums to the
    // job's end-to-end time.
    for job in f.jobs.keys().copied() {
        let cp = f
            .critical_path(job)
            .unwrap_or_else(|| panic!("gj{job} has no critical path"));
        let blamed: f64 = cp.blame.iter().map(|(_, s)| s).sum();
        assert!(
            (blamed - cp.total.as_secs_f64()).abs() < 1e-6,
            "gj{job}: blame {blamed}s != total {}s",
            cp.total.as_secs_f64()
        );
    }
}
