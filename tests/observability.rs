//! End-to-end tests for the observability layer: JSONL export determinism,
//! bounded-memory tracing via the ring buffer, and span reconstruction on a
//! live campaign.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::obs::{
    json_snapshot, prometheus_snapshot, JsonlWriter, RingBuffer, SpanCollector,
};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, Testbed, TestbedConfig, UserConsole};
use std::cell::RefCell;
use std::rc::Rc;

/// An `io::Write` backed by a shared byte vector, so a boxed [`JsonlWriter`]
/// handed to the trace sink can still be read afterwards.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A small grid campaign: two GRAM sites, grid-universe jobs with output
/// staging, enough protocol traffic to exercise every span phase.
fn testbed(seed: u64, trace: bool) -> Testbed {
    build(TestbedConfig {
        seed,
        trace,
        sites: vec![SiteSpec::pbs("anl", 8), SiteSpec::lsf("nrl", 8)],
        ..TestbedConfig::default()
    })
}

fn submit_jobs(tb: &mut Testbed, n: usize) {
    let spec =
        GridJobSpec::grid("app", "/home/jane/app.exe", Duration::from_mins(30)).with_stdout(50_000);
    let console = UserConsole::new(tb.scheduler).submit_many(n, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
}

#[test]
fn jsonl_export_is_byte_identical_across_same_seed_runs() {
    fn run(seed: u64) -> Vec<u8> {
        let buf = SharedBuf::default();
        let mut tb = testbed(seed, false);
        tb.world
            .trace_mut()
            .subscribe(Box::new(JsonlWriter::new(buf.clone())));
        submit_jobs(&mut tb, 4);
        tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));
        tb.world.trace_mut().flush();
        let bytes = buf.0.borrow().clone();
        bytes
    }
    let a = run(99);
    let b = run(99);
    assert!(!a.is_empty(), "trace export produced no lines");
    assert_eq!(a, b, "same seed must export byte-identical JSONL");
    assert_ne!(run(100), a, "different seeds must differ");
}

#[test]
fn ring_buffer_bounds_memory_with_vector_disabled() {
    let ring = RingBuffer::new(64);
    // In-memory vector off: the ring is the only retention.
    let mut tb = testbed(7, false);
    tb.world.trace_mut().subscribe(Box::new(ring.clone()));
    submit_jobs(&mut tb, 6);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(6));
    assert!(tb.world.trace().events().is_empty(), "vector must stay off");
    assert_eq!(ring.len(), 64, "ring holds exactly its capacity");
    assert!(
        ring.evicted() > 0,
        "campaign emits more than the ring holds"
    );
    // The retained window is the most recent events, in order.
    let snap = ring.snapshot();
    assert!(snap.windows(2).all(|w| w[0].time <= w[1].time));
}

#[test]
fn spans_reconstruct_the_pipeline_on_a_live_campaign() {
    let mut tb = testbed(13, true);
    submit_jobs(&mut tb, 5);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(6));

    let spans = SpanCollector::from_events(tb.world.trace().events());
    assert_eq!(spans.jobs().len(), 5, "one span per grid job");
    assert_eq!(spans.orphans, 0, "every span event attributes to a job");
    for (job, span) in spans.jobs() {
        assert!(span.completed(), "job {job} did not complete");
        let attempt = span.last_attempt().expect("at least one attempt");
        assert!(attempt.seq.is_some() && attempt.contact.is_some() && attempt.site.is_some());
        for milestone in [
            "submit",
            "auth",
            "commit",
            "stage_in_done",
            "active",
            "done",
        ] {
            assert!(
                attempt.at(milestone).is_some(),
                "job {job} missing milestone {milestone}"
            );
        }
        assert_eq!(
            attempt.staged_out_bytes, 50_000,
            "job {job} stdout staging not attributed"
        );
        assert!(!attempt.phase_durations().is_empty());
    }

    // Per-phase durations land in the metrics sink.
    spans.report_metrics(tb.world.metrics_mut());
    let m = tb.world.metrics();
    assert_eq!(m.counter("span.jobs"), 5);
    assert_eq!(m.counter("span.jobs_completed"), 5);
    for phase in ["auth", "commit", "stage_in", "queue", "execute"] {
        let h = m
            .histogram(&format!("span.phase.{phase}"))
            .unwrap_or_else(|| panic!("no span.phase.{phase} histogram"));
        assert_eq!(h.count(), 5, "span.phase.{phase} count");
    }
    assert!(m.histogram("span.end_to_end").is_some());

    // And the ladder renders something useful.
    let ladder = spans.render();
    assert!(ladder.contains("gj0") && ladder.contains("active"));
}

#[test]
fn metrics_snapshots_are_deterministic_and_parseable() {
    fn snapshots(seed: u64) -> (String, String) {
        let mut tb = testbed(seed, false);
        submit_jobs(&mut tb, 3);
        tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));
        let now = tb.world.now();
        (
            prometheus_snapshot(tb.world.metrics(), now),
            json_snapshot(tb.world.metrics(), now),
        )
    }
    let (prom_a, json_a) = snapshots(21);
    let (prom_b, json_b) = snapshots(21);
    assert_eq!(prom_a, prom_b, "Prometheus snapshot must be deterministic");
    assert_eq!(json_a, json_b, "JSON snapshot must be deterministic");
    // Prometheus text: every non-comment line is `name value`.
    for line in prom_a
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("metric name");
        let value = parts.next().expect("metric value");
        assert!(parts.next().is_none(), "extra tokens: {line}");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric()
                || c == '_'
                || c == '{'
                || c == '}'
                || c == '"'
                || c == '='
                || c == '.'),
            "bad metric name: {name}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "bad value in: {line}"
        );
    }
    assert!(prom_a.contains("net_sent"), "counters exported");
    // JSON snapshot has the top-level sections.
    for key in [
        "\"sim_time_us\"",
        "\"counters\"",
        "\"histograms\"",
        "\"series\"",
    ] {
        assert!(json_a.contains(key), "missing {key}");
    }
}

#[test]
fn profiler_accounts_for_a_real_run() {
    let mut tb = testbed(5, false);
    tb.world.enable_profiler();
    submit_jobs(&mut tb, 4);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));
    let events = tb.world.events_processed();
    let p = tb.world.profiler().expect("profiler enabled");
    assert_eq!(p.events_seen(), events, "profiler sees every kernel event");
    let by_kind: u64 = p.event_kinds().values().sum();
    assert_eq!(by_kind, events, "kind breakdown is complete");
    assert!(p.event_kinds()["deliver"] > 0 && p.event_kinds()["timer"] > 0);
    assert!(!p.queue_depth().points().is_empty(), "queue depth sampled");
    assert!(
        p.components().contains_key("gatekeeper"),
        "per-component rows"
    );
    let summary = p.summary();
    assert!(summary.contains("events/s") && summary.contains("gatekeeper"));
}
