//! End-to-end flight recorder: a campaign flying with the black box on
//! must (a) behave byte-identically to an uninstrumented run, and (b)
//! when a gatekeeper silently dies, auto-produce a causal dump that the
//! offline forensics decoder attributes to the injected site.

use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::obs::{
    site_aggregates, AnomalyDetector, AnomalyKind, DetectorConfig, FlightRecorder, TelemetrySample,
};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, Testbed, TestbedConfig};
use condor_g_suite::workloads::campaign::{CampaignDriver, CampaignSpec, DriverConfig};
use condor_g_trace::{flight_decode, Forensics};

const MAX_INFLIGHT: u32 = 512;

fn campaign_testbed(spec: &CampaignSpec, adaptive: bool) -> Testbed {
    let sites = spec
        .grid()
        .iter()
        .map(|s| SiteSpec::pbs(&s.name, s.cpus))
        .collect();
    let mut tb = build(TestbedConfig {
        seed: spec.seed,
        sites,
        lean: true,
        adaptive,
        proxy_lifetime: Duration::from_days(30),
        ..TestbedConfig::default()
    });
    let driver = CampaignDriver::new(
        tb.scheduler,
        spec,
        DriverConfig {
            max_inflight: MAX_INFLIGHT,
            ..DriverConfig::default()
        },
    );
    tb.world.add_component(tb.submit, "campaign", driver);
    tb
}

fn sample(tb: &Testbed, recorder: &FlightRecorder) -> TelemetrySample {
    let now = tb.world.now();
    let oldest_wait_secs = CampaignDriver::oldest_inflight_at(&tb.world, tb.submit)
        .map_or(0.0, |t| (now - t).as_secs_f64());
    let (sites, site_submits, site_attempt_failures) = site_aggregates(tb.world.metrics());
    TelemetrySample {
        t_us: now.micros(),
        events: tb.world.events_processed(),
        queue_depth: tb.world.queue_len() as u64,
        done: CampaignDriver::done(&tb.world, tb.submit),
        failed: CampaignDriver::failed(&tb.world, tb.submit),
        dispatched: CampaignDriver::dispatched(&tb.world, tb.submit),
        inflight: CampaignDriver::inflight(&tb.world, tb.submit),
        pending: CampaignDriver::pending(&tb.world, tb.submit),
        window: u64::from(MAX_INFLIGHT),
        oldest_wait_secs,
        sites,
        site_submits,
        site_attempt_failures,
        quarantines: recorder.quarantines(),
        ring_len: recorder.len() as u64,
        ring_evicted: recorder.evicted(),
        shards: tb.world.shard_count() as u64,
        shard_events: tb.world.shard_events(),
    }
}

/// The acceptance scenario: one dead gatekeeper, flight recorder on, the
/// quarantine-storm detector dumps the causal window, and chain-to-root
/// forensics on the decoded dump blames the injected site.
#[test]
fn dead_gatekeeper_campaign_auto_produces_attributing_dump() {
    let spec = CampaignSpec {
        seed: 7,
        sites: 4,
        users: 50,
        jobs: 400,
        duration: Duration::from_hours(2),
        ..CampaignSpec::default()
    };
    let mut tb = campaign_testbed(&spec, true);
    let recorder = FlightRecorder::new(65_536);
    tb.world.trace_mut().subscribe(Box::new(recorder.clone()));
    // site000's gatekeeper host dies 30 minutes in and never returns.
    let plan = FaultPlan::new().crash_restart(
        tb.sites[0].interface,
        SimTime::ZERO + Duration::from_mins(30),
        Duration::from_days(365),
    );
    tb.world.apply_fault_plan(&plan.sorted());

    let mut detector = AnomalyDetector::new(DetectorConfig {
        quarantine_storm: 1,
        ..DetectorConfig::default()
    });
    let mut dump: Option<(Vec<u8>, AnomalyKind, Option<String>)> = None;
    let horizon = SimTime::ZERO + Duration::from_hours(12);
    while tb.world.now() < horizon && dump.is_none() {
        tb.world.run_until(tb.world.now() + Duration::from_mins(10));
        let s = sample(&tb, &recorder);
        let site = recorder.last_quarantine_site();
        if let Some(anomaly) = detector.observe(&s, site.as_deref()).into_iter().next() {
            let anchor = anomaly.anchor.clone().unwrap_or_default();
            let reason = format!("{}: {}", anomaly.kind.name(), anomaly.reason);
            dump = Some((
                recorder.dump(&reason, &anchor, tb.world.now()),
                anomaly.kind,
                anomaly.anchor,
            ));
        }
    }

    let (bytes, kind, anchor) = dump.expect("dead gatekeeper must trigger an anomaly");
    assert_eq!(kind, AnomalyKind::QuarantineStorm);
    assert_eq!(
        anchor.as_deref(),
        Some("site000"),
        "storm anchors the dead site"
    );

    // The dump decodes into the offline record model...
    let (meta, records) = flight_decode(&bytes).expect("dump decodes cleanly");
    assert!(meta.reason.starts_with("quarantine_storm"));
    assert_eq!(meta.anchor, "site000");
    assert!(!records.is_empty());
    // ...with the injected fault pinned into the window...
    assert!(
        records
            .iter()
            .any(|r| r.kind == "fault.crash" && r.detail.contains("gk.site000")),
        "pinned fault.crash record must survive into the dump"
    );
    // ...and forensics attributes the stall to the injected site.
    let f = Forensics::build(records);
    let causes = f.root_causes();
    assert!(
        !causes.is_empty(),
        "dump window carries the failed attempts"
    );
    assert!(
        causes.iter().any(|a| matches!(
            &a.cause,
            Some((kind, detail, _)) if kind == "fault.crash" && detail.contains("gk.site000")
        )),
        "chain_to_root must blame the injected gatekeeper: {causes:?}"
    );
}

/// The black box is observation-only: subscribing it must not perturb the
/// simulation. Same seed, same outcomes, recorder on or off.
#[test]
fn flight_recorder_does_not_change_campaign_outcomes() {
    let spec = CampaignSpec {
        seed: 11,
        sites: 3,
        users: 20,
        jobs: 300,
        duration: Duration::from_hours(2),
        ..CampaignSpec::default()
    };
    let run = |with_flight: bool| {
        let mut tb = campaign_testbed(&spec, false);
        let recorder = if with_flight {
            let rec = FlightRecorder::new(4_096);
            tb.world.trace_mut().subscribe(Box::new(rec.clone()));
            Some(rec)
        } else {
            None
        };
        let horizon = SimTime::ZERO + Duration::from_days(10);
        loop {
            tb.world.run_until(tb.world.now() + Duration::from_hours(6));
            let settled = CampaignDriver::done(&tb.world, tb.submit)
                + CampaignDriver::failed(&tb.world, tb.submit);
            if settled >= spec.jobs || tb.world.now() >= horizon {
                break;
            }
        }
        if let Some(rec) = &recorder {
            assert!(rec.seen() > 0, "recorder saw traffic");
            assert!(!rec.is_empty());
        }
        (
            CampaignDriver::done(&tb.world, tb.submit),
            CampaignDriver::failed(&tb.world, tb.submit),
            CampaignDriver::digest(&tb.world, tb.submit),
            tb.world.events_processed(),
        )
    };
    let plain = run(false);
    let flown = run(true);
    assert_eq!(plain, flown, "flight recorder perturbed the simulation");
    assert_eq!(plain.0 + plain.1, spec.jobs, "campaign settled");
}

/// The ring keeps only the most recent window at campaign scale, and the
/// whole-ring dump round-trips through the offline decoder.
#[test]
fn ring_bounds_memory_and_whole_ring_dump_round_trips() {
    let spec = CampaignSpec {
        seed: 3,
        sites: 3,
        users: 20,
        jobs: 300,
        duration: Duration::from_hours(2),
        ..CampaignSpec::default()
    };
    let mut tb = campaign_testbed(&spec, false);
    let recorder = FlightRecorder::new(256);
    tb.world.trace_mut().subscribe(Box::new(recorder.clone()));
    let horizon = SimTime::ZERO + Duration::from_days(10);
    loop {
        tb.world.run_until(tb.world.now() + Duration::from_hours(6));
        let settled = CampaignDriver::done(&tb.world, tb.submit)
            + CampaignDriver::failed(&tb.world, tb.submit);
        if settled >= spec.jobs || tb.world.now() >= horizon {
            break;
        }
    }
    assert!(recorder.len() <= 256, "ring never exceeds capacity");
    assert!(
        recorder.evicted() > 0,
        "a 300-job campaign overflows 256 slots"
    );
    assert_eq!(
        recorder.seen() - recorder.evicted(),
        recorder.len() as u64 + recorder.pinned().len() as u64
    );
    let bytes = recorder.dump("test: whole ring", "", tb.world.now());
    let (meta, records) = flight_decode(&bytes).expect("decodes");
    assert_eq!(meta.anchor, "");
    assert_eq!(records.len(), recorder.len() + recorder.pinned().len());
    // Dumps are time-ordered.
    assert!(records.windows(2).all(|w| w[0].time <= w[1].time));
}
