//! Full-stack determinism: the same seed must reproduce a whole campaign
//! event for event — the property that makes every experiment in
//! EXPERIMENTS.md exactly re-runnable.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn campaign(seed: u64) -> (u64, u64, u64, u64, String) {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![
            SiteSpec::pbs("pbs", 8),
            SiteSpec::lsf("lsf", 8),
            SiteSpec::condor_pool("pool", 8),
        ],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(4, Duration::from_hours(6));
    let grid =
        GridJobSpec::grid("g", "/home/jane/app.exe", Duration::from_mins(45)).with_stdout(10_000);
    let pool = GridJobSpec::pool("p", "/home/jane/worker.exe", Duration::from_mins(30))
        .with_remote_io(300.0, 8192);
    let console = UserConsole::new(tb.scheduler)
        .submit_many(6, grid)
        .submit_many(6, pool);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(12));
    let m = tb.world.metrics();
    let histories: String = (0..12)
        .map(|i| UserConsole::history_of(&tb.world, node, i).join(","))
        .collect::<Vec<_>>()
        .join(";");
    (
        tb.world.events_processed(),
        m.counter("condor_g.jobs_done"),
        m.counter("net.sent"),
        m.counter("condor.checkpoints"),
        histories,
    )
}

#[test]
fn identical_seeds_identical_campaigns() {
    let a = campaign(2024);
    let b = campaign(2024);
    assert_eq!(a, b, "same seed diverged");
    // And everything actually happened (this is not a trivially-empty run).
    assert_eq!(a.1, 12, "jobs done");
    assert!(a.0 > 10_000, "suspiciously few events: {}", a.0);
}

#[test]
fn different_seeds_differ() {
    let a = campaign(1);
    let b = campaign(2);
    // Jobs still complete under both seeds...
    assert_eq!(a.1, 12);
    assert_eq!(b.1, 12);
    // ...but the executions are genuinely different runs.
    assert_ne!(
        (a.0, a.2),
        (b.0, b.2),
        "different seeds produced identical event/message counts"
    );
}
