//! Full-stack determinism: the same seed must reproduce a whole campaign
//! event for event — the property that makes every experiment in
//! EXPERIMENTS.md exactly re-runnable.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn campaign(seed: u64) -> (u64, u64, u64, u64, String) {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![
            SiteSpec::pbs("pbs", 8),
            SiteSpec::lsf("lsf", 8),
            SiteSpec::condor_pool("pool", 8),
        ],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(4, Duration::from_hours(6));
    let grid =
        GridJobSpec::grid("g", "/home/jane/app.exe", Duration::from_mins(45)).with_stdout(10_000);
    let pool = GridJobSpec::pool("p", "/home/jane/worker.exe", Duration::from_mins(30))
        .with_remote_io(300.0, 8192);
    let console = UserConsole::new(tb.scheduler)
        .submit_many(6, grid)
        .submit_many(6, pool);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(12));
    let m = tb.world.metrics();
    let histories: String = (0..12)
        .map(|i| UserConsole::history_of(&tb.world, node, i).join(","))
        .collect::<Vec<_>>()
        .join(";");
    (
        tb.world.events_processed(),
        m.counter("condor_g.jobs_done"),
        m.counter("net.sent"),
        m.counter("condor.checkpoints"),
        histories,
    )
}

/// FNV-1a 64 over a byte stream — tiny, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The demo scenario's event trace is a *golden* artifact: byte-identical
/// across runs, machines, and — the real point — across kernel/matchmaker
/// optimizations. Any change to event ordering, trace rendering, or match
/// outcomes shows up here as a hash mismatch. If a change is *supposed* to
/// alter behaviour, regenerate with:
/// `condor-g-sim --trace-out /tmp/t.jsonl scenarios/demo.scn` and update
/// the constant.
#[test]
fn demo_scenario_trace_is_golden() {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let dir = std::env::temp_dir().join(format!("golden-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("demo-trace.jsonl");
    let out = std::process::Command::new(exe)
        .arg("--trace-out")
        .arg(&trace)
        .arg(format!("{}/scenarios/demo.scn", env!("CARGO_MANIFEST_DIR")))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "exit {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&trace).expect("trace written");
    let _ = std::fs::remove_dir_all(&dir);
    let lines = bytes.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(lines, 1002, "trace line count changed");
    assert_eq!(
        fnv1a(&bytes),
        0x8236_2c72_acb4_9633,
        "demo.scn trace diverged from the golden run"
    );
}

/// The adaptive scenario (weather-driven quarantine on) is just as
/// replayable as the vanilla one: two runs of `adaptive.scn` must produce
/// byte-identical traces, and the Perfetto export must self-verify (the
/// binary exits non-zero if the packet census diverges from the JSONL).
#[test]
fn adaptive_scenario_trace_is_reproducible() {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let dir = std::env::temp_dir().join(format!("adaptive-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut hashes = Vec::new();
    for run in 0..2 {
        let trace = dir.join(format!("trace-{run}.jsonl"));
        let perfetto = dir.join(format!("trace-{run}.pb"));
        let out = std::process::Command::new(exe)
            .arg("--trace-out")
            .arg(&trace)
            .arg("--perfetto-out")
            .arg(&perfetto)
            .arg(format!(
                "{}/scenarios/adaptive.scn",
                env!("CARGO_MANIFEST_DIR")
            ))
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "run {run} exit {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&trace).expect("trace written");
        let pb = std::fs::read(&perfetto).expect("perfetto written");
        assert!(!pb.is_empty(), "empty perfetto export");
        // The adaptive machinery actually ran: its decisions are on the record.
        let text = String::from_utf8_lossy(&bytes);
        assert!(
            text.contains("broker.quarantine"),
            "run {run}: no quarantine in adaptive scenario trace"
        );
        hashes.push((bytes.len(), fnv1a(&bytes), pb.len(), fnv1a(&pb)));
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        hashes[0], hashes[1],
        "adaptive scenario diverged across runs"
    );
}

#[test]
fn identical_seeds_identical_campaigns() {
    let a = campaign(2024);
    let b = campaign(2024);
    assert_eq!(a, b, "same seed diverged");
    // And everything actually happened (this is not a trivially-empty run).
    assert_eq!(a.1, 12, "jobs done");
    assert!(a.0 > 10_000, "suspiciously few events: {}", a.0);
}

#[test]
fn different_seeds_differ() {
    let a = campaign(1);
    let b = campaign(2);
    // Jobs still complete under both seeds...
    assert_eq!(a.1, 12);
    assert_eq!(b.1, 12);
    // ...but the executions are genuinely different runs.
    assert_ne!(
        (a.0, a.2),
        (b.0, b.2),
        "different seeds produced identical event/message counts"
    );
}
