//! MDS-broker discovery (paper §4.4) and DAG execution (§6's CMS shape)
//! through the full stack.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::{DagMan, DagSpec};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

#[test]
fn mds_broker_steers_jobs_by_requirements() {
    // Two architectures; jobs demand INTEL. The broker must discover the
    // sites through MDS and send everything to the INTEL one.
    let mut tb = build(TestbedConfig {
        sites: vec![
            SiteSpec::pbs("intel-site", 8).with_arch("INTEL"),
            SiteSpec::pbs("sparc-site", 64).with_arch("SUN4u"),
        ],
        with_mds: true,
        mds_broker: true,
        ..TestbedConfig::default()
    });
    let spec = GridJobSpec::grid("app", "/home/jane/app.exe", Duration::from_mins(20))
        .with_requirements("TARGET.Arch == \"INTEL\"")
        .with_rank("TARGET.FreeCpus");
    let console = UserConsole::new(tb.scheduler).submit_many(6, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));

    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.jobs_done"), 6);
    // Every execution happened at the INTEL site.
    let intel_cpu = m
        .histogram("site.intel-site.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    let sparc_cpu = m
        .histogram("site.sparc-site.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(intel_cpu, 6, "INTEL site ran {intel_cpu} jobs");
    assert_eq!(sparc_cpu, 0, "SPARC site ran {sparc_cpu} jobs");
    assert!(m.counter("mds.queries") >= 1);
}

#[test]
fn mds_broker_avoids_dead_sites() {
    // Site B's GRIS dies with its cluster; its ads age out of MDS and the
    // broker steers later jobs to site A only.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("alive", 8), SiteSpec::pbs("doomed", 8)],
        with_mds: true,
        mds_broker: true,
        ..TestbedConfig::default()
    });
    let node = tb.submit;
    let spec = GridJobSpec::grid("app", "/home/jane/app.exe", Duration::from_mins(10));
    // Submit a late batch after the crash.
    let mut console = UserConsole::new(tb.scheduler);
    for _ in 0..4 {
        console = console.submit_after(Duration::from_mins(40), spec.clone());
    }
    tb.world.add_component(node, "console", console);
    // Kill the whole doomed site (gatekeeper + cluster) at t=10min.
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(10));
    let doomed = tb.sites[1].clone();
    tb.world.crash_node_now(doomed.interface);
    tb.world.crash_node_now(doomed.cluster);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(3));

    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.jobs_done"), 4);
    let alive_jobs = m
        .histogram("site.alive.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(alive_jobs, 4, "jobs were steered at a dead site");
}

#[test]
fn dag_runs_cms_shaped_pipeline() {
    // A miniature CMS pipeline: N simulation jobs fan into a transfer
    // node, which gates a reconstruction job.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("wisc", 16), SiteSpec::pbs("ncsa", 16)],
        ..TestbedConfig::default()
    });
    let mut dag = DagSpec::new();
    let mut sims = Vec::new();
    for i in 0..10 {
        let s = dag.add(
            &format!("sim{i}"),
            GridJobSpec::grid(
                &format!("sim{i}"),
                "/home/jane/app.exe",
                Duration::from_mins(30),
            )
            .with_stdout(100_000),
        );
        sims.push(s);
    }
    let xfer = dag.add(
        "xfer",
        GridJobSpec::grid("xfer", "/home/jane/app.exe", Duration::from_mins(10)),
    );
    let recon = dag.add(
        "recon",
        GridJobSpec::grid("recon", "/home/jane/app.exe", Duration::from_hours(1)),
    );
    for s in &sims {
        dag.edge(*s, xfer);
    }
    dag.edge(xfer, recon);
    dag.max_active = 4; // "makes sure that local disk buffers do not overflow"

    let node = tb.submit;
    let scheduler = tb.scheduler;
    tb.world
        .add_component(node, "dagman", DagMan::new(dag, scheduler));
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(12));

    assert_eq!(
        tb.world.store().get::<bool>(node, "dag/success"),
        Some(true)
    );
    assert_eq!(
        tb.world.store().get::<u64>(node, "dag/done_nodes"),
        Some(12)
    );
    let m = tb.world.metrics();
    assert_eq!(m.counter("dag.completed"), 1);
    assert_eq!(m.counter("condor_g.jobs_done"), 12);
    // The throttle kept at most 4 nodes in flight: with 30-minute sims and
    // a 4-wide window, the sims alone need ≥ 3 waves ≈ 90 minutes.
    assert!(tb.world.now() >= SimTime::ZERO + Duration::from_mins(90));
}

#[test]
fn dag_retries_through_flaky_site() {
    // One site kills everything at its 10-minute wall limit; the DAG's
    // retries push each node through until the broker lands it on the
    // good site.
    let mut tb = build(TestbedConfig {
        sites: vec![
            SiteSpec::pbs("strict", 8).with_wall_limit(Duration::from_mins(10)),
            SiteSpec::pbs("generous", 8),
        ],
        ..TestbedConfig::default()
    });
    let mut dag = DagSpec::new();
    let a = dag.add(
        "a",
        GridJobSpec::grid("a", "/home/jane/app.exe", Duration::from_mins(30)),
    );
    let b = dag.add(
        "b",
        GridJobSpec::grid("b", "/home/jane/app.exe", Duration::from_mins(30)),
    );
    dag.edge(a, b);
    dag.nodes[0].retries = 3;
    dag.nodes[1].retries = 3;

    let node = tb.submit;
    let scheduler = tb.scheduler;
    tb.world
        .add_component(node, "dagman", DagMan::new(dag, scheduler));
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(8));
    assert_eq!(
        tb.world.store().get::<bool>(node, "dag/success"),
        Some(true)
    );
    // At least one execution was wall-killed along the way (the strict
    // site got tried), and the GridManager resubmitted around it.
    let m = tb.world.metrics();
    assert!(
        m.counter("site.wall_killed") + m.counter("gm.attempt_failures") > 0,
        "the flaky path was never exercised"
    );
}
