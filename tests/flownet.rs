//! End-to-end tests of the shared-bandwidth flow network: contention
//! measurably slows stage-in, in-flight transfers survive partitions via
//! abort-and-retry, and flow mode keeps the kernel's determinism
//! guarantees (same seed, any shard count).

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{
    build, SiteSpec, TestbedConfig, UserConsole, WanLinkSpec, WanTopology,
};
use std::process::Command;

/// Run the compiled binary on scenario text, with extra CLI args.
fn run_text(text: &str, tag: &str, args: &[&str]) -> String {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let dir = std::env::temp_dir().join("condor-g-flownet-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.scn"));
    std::fs::write(&path, text).unwrap();
    let out = Command::new(exe)
        .args(args)
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{tag} exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 report")
}

/// The shipped stage-in storm scenario's text.
fn storm_text() -> String {
    std::fs::read_to_string(format!(
        "{}/scenarios/stagein_storm.scn",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("scenario file")
}

/// Extract the numeric value of a `metric  value` report row.
fn metric(report: &str, name: &str) -> u64 {
    report
        .lines()
        .find(|l| l.contains(name))
        .unwrap_or_else(|| panic!("no row {name:?} in:\n{report}"))
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .next_back()
        .unwrap_or_else(|| panic!("no number in row {name:?}"))
}

/// Mean seconds of a named phase from the phase-summary table.
fn phase_mean(report: &str, phase: &str) -> f64 {
    report
        .lines()
        .find(|l| l.split_whitespace().next() == Some(phase))
        .unwrap_or_else(|| panic!("no phase {phase:?} in:\n{report}"))
        .split_whitespace()
        .last()
        .and_then(|w| w.strip_suffix('s'))
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparseable mean for {phase:?}"))
}

#[test]
fn contended_stage_in_is_slower_than_uncontended() {
    let storm = storm_text();
    let contended = run_text(&storm, "storm", &[]);
    assert_eq!(metric(&contended, "jobs done"), 24, "{contended}");
    assert_eq!(metric(&contended, "jobs failed"), 0);
    assert!(metric(&contended, "contended flows") > 0, "{contended}");

    // Same workload with the link/route/linkbw directives stripped: every
    // transfer gets private legacy bandwidth.
    let solo_text: String = storm
        .lines()
        .filter(|l| {
            let d = l.split_whitespace().next().unwrap_or("");
            !matches!(d, "link" | "route" | "linkbw" | "linkdown")
        })
        .map(|l| format!("{l}\n"))
        .collect();
    let solo = run_text(&solo_text, "storm-solo", &[]);
    assert_eq!(metric(&solo, "jobs done"), 24, "{solo}");

    let contended_mean = phase_mean(&contended, "stage_in");
    let solo_mean = phase_mean(&solo, "stage_in");
    assert!(
        contended_mean > solo_mean * 3.0,
        "24 stage-ins sharing one 2.5 MB/s link should be far slower than \
         private links: contended {contended_mean}s vs solo {solo_mean}s"
    );
}

#[test]
fn storm_is_same_seed_deterministic_across_shard_counts() {
    let storm = storm_text();
    let dir = std::env::temp_dir().join("condor-g-flownet-test");
    std::fs::create_dir_all(&dir).unwrap();
    let t1 = dir.join("storm-a.jsonl");
    let t2 = dir.join("storm-b.jsonl");
    let t4 = dir.join("storm-c.jsonl");
    run_text(&storm, "storm-det", &["--trace-out", t1.to_str().unwrap()]);
    run_text(
        &storm,
        "storm-det",
        &["--trace-out", t2.to_str().unwrap(), "--shards", "1"],
    );
    run_text(
        &storm,
        "storm-det",
        &["--trace-out", t4.to_str().unwrap(), "--shards", "2"],
    );
    let a = std::fs::read(&t1).unwrap();
    let b = std::fs::read(&t2).unwrap();
    let c = std::fs::read(&t4).unwrap();
    assert!(!a.is_empty(), "trace written");
    assert_eq!(a, b, "same seed, same trace");
    assert_eq!(a, c, "flow mode must shard deterministically");
}

#[test]
fn partition_mid_transfer_aborts_flows_and_jobs_still_finish() {
    let mut tb = build(TestbedConfig {
        seed: 29,
        trace: true,
        sites: vec![SiteSpec::pbs("far", 8)],
        exe_size: 16_000_000,
        wan: Some(WanTopology {
            links: vec![WanLinkSpec {
                name: "wan".into(),
                capacity: 2_500_000.0,
                latency: 0.030,
            }],
            site_routes: vec![(0, vec!["wan".into()])],
        }),
        ..TestbedConfig::default()
    });
    let mut console = UserConsole::new(tb.scheduler);
    for _ in 0..4 {
        console = console.submit_after(
            Duration::ZERO,
            GridJobSpec::grid("app", "/home/jane/app.exe", Duration::from_mins(10)),
        );
    }
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    // Four 16 MB stage-ins share 2.5 MB/s, so they are all still in flight
    // at t=10s when the submit machine is cut off for five minutes.
    let others: Vec<NodeId> = tb
        .sites
        .iter()
        .flat_map(|s| [s.interface, s.cluster])
        .collect();
    let plan = FaultPlan::new()
        .partition_window(
            vec![tb.submit],
            others,
            SimTime::ZERO + Duration::from_secs(10),
            Duration::from_mins(5),
        )
        .sorted();
    tb.world.apply_fault_plan(&plan);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));

    let m = tb.world.metrics();
    assert!(
        m.counter("net.flows_aborted") >= 1,
        "partition must cut transfers in flight (aborted = {})",
        m.counter("net.flows_aborted")
    );
    assert_eq!(m.counter("condor_g.jobs_done"), 4, "all jobs recover");
    assert_eq!(m.counter("condor_g.jobs_failed"), 0);
    assert_eq!(UserConsole::terminal_count(&tb.world, node), 4);
}

#[test]
fn link_outage_mid_transfer_recovers_via_retry() {
    // Same shape as the partition test but through the scenario language:
    // the WAN link itself dies while stage-ins are crossing it.
    let text = "seed 17\n\
                site pbs far 8\n\
                image 16M\n\
                link wan 2.5M 30ms\n\
                route site 0 via wan\n\
                job grid app.exe 10m x4 stdout=1M\n\
                linkdown wan at 10s for 5m\n\
                run 4h\n";
    let report = run_text(text, "linkdown", &[]);
    assert_eq!(metric(&report, "jobs done"), 4, "{report}");
    assert_eq!(metric(&report, "jobs failed"), 0);
    assert!(metric(&report, "flows aborted") >= 1, "{report}");
}

#[test]
fn bandwidth_override_to_zero_stalls_then_resumes() {
    // A capacity-0 window stalls every flow (no completion events at all)
    // until the restore rescales them back to a finite rate.
    let text = "seed 5\n\
                site pbs far 8\n\
                image 16M\n\
                link wan 2.5M 30ms\n\
                route site 0 via wan\n\
                job grid app.exe 10m x2 stdout=1M\n\
                linkbw wan 0 at 5s for 10m\n\
                run 4h\n";
    let report = run_text(text, "stall", &[]);
    assert_eq!(metric(&report, "jobs done"), 2, "{report}");
    assert_eq!(metric(&report, "jobs failed"), 0);
    assert_eq!(metric(&report, "link rescales"), 2, "{report}");
    // The stall window adds its full length to the stage-in phase: flows
    // froze rather than completing on the pre-override schedule.
    assert!(
        phase_mean(&report, "stage_in") > 500.0,
        "stage-in should absorb the 10-minute stall:\n{report}"
    );
}
