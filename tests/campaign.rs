//! Campaign-scale tests: the streaming generator's determinism, the lean
//! testbed's bounded memory bookkeeping, and the sweep farm's
//! serial/parallel equivalence.

use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::campaign::{CampaignDriver, CampaignSpec, DriverConfig};
use condor_g_suite::workloads::farm::{run_cells, Cell, CellResult, FarmStats};

/// Run one small campaign cell end to end through the lean stack and
/// return its merged outcome. Deterministic in `seed`.
fn run_cell(seed: u64, jobs: u64) -> CellResult {
    let spec = CampaignSpec {
        seed,
        jobs,
        sites: 4,
        users: 20,
        duration: Duration::from_hours(2),
        mean_runtime_secs: 600.0,
        ..CampaignSpec::default()
    };
    let sites = spec
        .grid()
        .iter()
        .map(|s| SiteSpec::pbs(&s.name, s.cpus))
        .collect();
    let mut tb = build(TestbedConfig {
        seed: spec.seed,
        sites,
        lean: true,
        proxy_lifetime: Duration::from_days(30),
        ..TestbedConfig::default()
    });
    let driver = CampaignDriver::new(tb.scheduler, &spec, DriverConfig::default());
    tb.world.add_component(tb.submit, "campaign", driver);
    let horizon = SimTime::ZERO + Duration::from_days(20);
    loop {
        let next = tb.world.now() + Duration::from_hours(6);
        tb.world.run_until(next);
        let settled = CampaignDriver::done(&tb.world, tb.submit)
            + CampaignDriver::failed(&tb.world, tb.submit);
        if settled >= spec.jobs || tb.world.now() >= horizon {
            break;
        }
    }
    CellResult {
        label: format!("seed={seed}"),
        seed,
        jobs_done: CampaignDriver::done(&tb.world, tb.submit),
        jobs_failed: CampaignDriver::failed(&tb.world, tb.submit),
        sim_secs: (tb.world.now() - SimTime::ZERO).as_secs_f64(),
        wall_secs: 0.0, // fixed so results compare exactly across runs
        digest: CampaignDriver::digest(&tb.world, tb.submit),
    }
}

#[test]
fn same_seed_campaigns_are_byte_identical_scenarios() {
    // The generator is the scenario: two streams from one spec must match
    // byte for byte, across any mix of arrivals, sweeps and users.
    let spec = CampaignSpec {
        seed: 7,
        jobs: 50_000,
        sites: 30,
        users: 300,
        ..CampaignSpec::default()
    };
    let mut a = Vec::new();
    for j in spec.stream() {
        j.encode(&mut a);
    }
    let mut b = Vec::new();
    for j in spec.stream() {
        j.encode(&mut b);
    }
    assert_eq!(a, b, "same-seed streams diverged");
    assert_eq!(spec.grid(), spec.grid(), "same-seed grids diverged");
}

#[test]
fn lean_campaign_completes_and_reclaims_state() {
    let r = run_cell(11, 400);
    assert_eq!(r.jobs_done + r.jobs_failed, 400, "campaign did not settle");
    assert!(r.jobs_done >= 390, "unexpected failure rate: {r:?}");
    assert_ne!(r.digest, 0xcbf2_9ce4_8422_2325, "digest never advanced");
}

#[test]
fn campaign_runs_are_reproducible() {
    let a = run_cell(23, 300);
    let b = run_cell(23, 300);
    assert_eq!(a, b, "same seed, different outcome");
}

#[test]
fn sweep_farm_parallel_merges_identically_to_serial() {
    let cells: Vec<Cell> = (0..4)
        .map(|i| Cell {
            label: format!("cell{i}"),
            seed: 100 + i,
        })
        .collect();
    let serial = run_cells(&cells, 1, |c| run_cell(c.seed, 200));
    let parallel = run_cells(&cells, 4, |c| run_cell(c.seed, 200));
    assert_eq!(serial, parallel, "parallel cells diverged from serial");
    assert_eq!(
        FarmStats::of(&serial),
        FarmStats::of(&parallel),
        "merged statistics diverged"
    );
    let total: u64 = serial.iter().map(|r| r.jobs_done + r.jobs_failed).sum();
    assert_eq!(total, 800, "not every cell settled");
}
