//! Sharded-kernel acceptance oracle: any `--shards N` must reproduce the
//! single-shard run bit-for-bit. The kernel partitions state per shard
//! but commits events in one global `(time, seq)` order, so the trace
//! stream, job outcomes, and campaign digests are invariants of the
//! partitioning — these tests pin that contract from the outside, through
//! the real binaries.

/// FNV-1a 64 over a byte stream — matches tests/determinism.rs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The same golden constant `demo_scenario_trace_is_golden` pins: the
/// sharded kernel must not move it for ANY shard count.
const DEMO_GOLDEN_FNV: u64 = 0x8236_2c72_acb4_9633;

#[test]
fn demo_trace_is_golden_for_every_shard_count() {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let dir = std::env::temp_dir().join(format!("shard-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for shards in ["1", "2", "4"] {
        let trace = dir.join(format!("demo-{shards}.jsonl"));
        let out = std::process::Command::new(exe)
            .arg("--shards")
            .arg(shards)
            .arg("--trace-out")
            .arg(&trace)
            .arg(format!("{}/scenarios/demo.scn", env!("CARGO_MANIFEST_DIR")))
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--shards {shards} exit {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&trace).expect("trace written");
        assert_eq!(
            fnv1a(&bytes),
            DEMO_GOLDEN_FNV,
            "--shards {shards} diverged from the golden demo.scn trace"
        );
        // The run actually used the requested partitioning.
        let stdout = String::from_utf8_lossy(&out.stdout);
        let row = stdout
            .lines()
            .find(|l| l.trim_start().starts_with("kernel shards"))
            .unwrap_or_else(|| panic!("--shards {shards}: no shard row in report:\n{stdout}"));
        assert_eq!(
            row.split_whitespace().last(),
            Some(shards),
            "--shards {shards}: report disagrees on shard count"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pull `key=value` off a campaign RESULT line.
fn result_field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no {key}= in RESULT line: {line}"))
}

#[test]
fn campaign_digest_is_shard_count_invariant() {
    let exe = env!("CARGO_BIN_EXE_condor-g-campaign");
    let mut digests = Vec::new();
    for shards in ["1", "2", "4"] {
        let out = std::process::Command::new(exe)
            .args([
                "--jobs", "2000", "--sites", "10", "--users", "50", "--quiet", "--shards", shards,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "--shards {shards} campaign failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let result = stdout
            .lines()
            .rev()
            .find(|l| l.starts_with("RESULT "))
            .expect("no RESULT line");
        assert_eq!(result_field(result, "done"), "2000");
        assert_eq!(result_field(result, "shards"), shards);
        // Per-shard totals: one slash-separated bucket per shard, summing
        // to a real event count.
        let per_shard = result_field(result, "shard_events");
        let buckets: Vec<u64> = per_shard
            .split('/')
            .map(|w| w.parse().expect("numeric shard bucket"))
            .collect();
        assert_eq!(buckets.len(), shards.parse::<usize>().unwrap());
        assert!(buckets.iter().sum::<u64>() > 0);
        digests.push(result_field(result, "digest").to_string());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "campaign digests diverged across shard counts: {digests:?}"
    );
}
