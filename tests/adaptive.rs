//! Weather-driven adaptive brokering, end to end: with one site's
//! gatekeeper dead through the submission window, the adaptive broker
//! must quarantine it after the first observed failure and drain the
//! rest of the campaign to the healthy sites — measurably fewer wasted
//! submit attempts than the non-adaptive round-robin, which walks every
//! third job into the dead gatekeeper's 40-retransmit submit budget.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::GmConfig;
use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

const JOBS: usize = 24;

struct Outcome {
    done: u64,
    /// Wasted submit attempts charged to the dead site.
    dead_site_failures: u64,
    health_transitions: u64,
    /// Trace kinds observed, in order (quarantine / probe / recover / ...).
    broker_events: Vec<(String, String)>,
    events_processed: u64,
    histories: String,
}

fn degraded_site_run(seed: u64, adaptive: bool) -> Outcome {
    let mut tb = build(TestbedConfig {
        seed,
        trace: true,
        adaptive,
        sites: vec![
            SiteSpec::pbs("alpha", 8),
            SiteSpec::pbs("beta", 8),
            SiteSpec::pbs("gamma", 8),
        ],
        proxy_lifetime: Duration::from_days(7),
        gm: GmConfig {
            // Shrink the per-attempt retransmit budget so a dead
            // gatekeeper costs 40 x 5s = 200s per wasted attempt instead
            // of 20 minutes — keeps the scenario short while preserving
            // the failure shape.
            submit_retry: Duration::from_secs(5),
            ..GmConfig::default()
        },
        ..TestbedConfig::default()
    });
    // alpha's interface machine is down from the start, through the whole
    // staggered submission window.
    let plan = FaultPlan::new().crash_restart(
        tb.sites[0].interface,
        SimTime::ZERO + Duration::from_secs(1),
        Duration::from_hours(2),
    );
    tb.world.apply_fault_plan(&plan.sorted());

    let spec = GridJobSpec::grid("task", "/home/jane/app.exe", Duration::from_mins(45))
        .with_stdout(10_000);
    // Staggered arrivals (one every 4 minutes): later jobs only benefit
    // from the quarantine if the broker actually learns.
    let mut console = UserConsole::new(tb.scheduler);
    for i in 0..JOBS {
        console = console.submit_after(Duration::from_mins(4 * i as u64), spec.clone());
    }
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(10));

    let broker_events = tb
        .world
        .trace()
        .events()
        .iter()
        .filter(|e| e.kind.starts_with("broker."))
        .map(|e| (e.kind.to_string(), e.detail.clone()))
        .collect();
    let m = tb.world.metrics();
    let histories = (0..JOBS as u64)
        .map(|i| UserConsole::history_of(&tb.world, node, i).join(","))
        .collect::<Vec<_>>()
        .join(";");
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        dead_site_failures: m.counter("site.alpha.attempt_failures"),
        health_transitions: m.counter("broker.health_transitions"),
        broker_events,
        events_processed: tb.world.events_processed(),
        histories,
    }
}

#[test]
fn adaptive_broker_drains_work_away_from_degraded_site() {
    let baseline = degraded_site_run(77, false);
    let adaptive = degraded_site_run(77, true);

    // Both modes still deliver every job exactly once.
    assert_eq!(baseline.done, JOBS as u64, "baseline lost jobs");
    assert_eq!(adaptive.done, JOBS as u64, "adaptive lost jobs");

    // The round-robin baseline keeps walking into the dead gatekeeper;
    // the adaptive broker eats the first failure or two, quarantines
    // alpha, and sends everything else to beta/gamma.
    assert!(
        baseline.dead_site_failures >= 4,
        "baseline scenario too tame: only {} wasted attempts at alpha",
        baseline.dead_site_failures
    );
    assert!(
        adaptive.dead_site_failures < baseline.dead_site_failures,
        "adaptive broker did not reduce wasted attempts: {} adaptive vs {} baseline",
        adaptive.dead_site_failures,
        baseline.dead_site_failures
    );

    // The routing decisions are visible in the trace: alpha is
    // quarantined, then re-probed when its sentence lapses.
    assert!(adaptive.health_transitions >= 2, "no health transitions");
    let kinds: Vec<&str> = adaptive
        .broker_events
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert!(
        kinds.contains(&"broker.quarantine"),
        "no quarantine traced: {kinds:?}"
    );
    assert!(
        kinds.contains(&"broker.probe"),
        "no probation probe traced: {kinds:?}"
    );
    assert!(
        adaptive
            .broker_events
            .iter()
            .any(|(k, d)| k == "broker.quarantine" && d.contains("site=alpha")),
        "quarantine not attributed to alpha: {:?}",
        adaptive.broker_events
    );

    // The baseline broker never makes health decisions.
    assert_eq!(baseline.health_transitions, 0);
    assert!(baseline.broker_events.is_empty());
}

#[test]
fn adaptive_runs_are_seed_deterministic() {
    let a = degraded_site_run(91, true);
    let b = degraded_site_run(91, true);
    assert_eq!(
        a.events_processed, b.events_processed,
        "event count diverged"
    );
    assert_eq!(a.histories, b.histories, "job histories diverged");
    assert_eq!(
        a.broker_events, b.broker_events,
        "health decisions diverged"
    );
    assert_eq!(a.dead_site_failures, b.dead_site_failures);
    assert_eq!(a.done, JOBS as u64);
}
