//! End-to-end agent tests: the full Condor-G stack (Scheduler →
//! GridManager → GRAM → site scheduler → GASS) across simulated sites.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, Testbed, TestbedConfig, UserConsole};

fn quick_jobs(n: usize, secs: u64, stdout: u64) -> GridJobSpec {
    let _ = n;
    GridJobSpec::grid("app", "/home/jane/app.exe", Duration::from_secs(secs)).with_stdout(stdout)
}

fn run_console(tb: &mut Testbed, console: UserConsole, until: Duration) -> NodeId {
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + until);
    node
}

#[test]
fn jobs_complete_across_two_sites() {
    let mut tb = build(TestbedConfig::default());
    let console = UserConsole::new(tb.scheduler).submit_many(10, quick_jobs(10, 1800, 4096));
    let node = run_console(&mut tb, console, Duration::from_hours(4));
    assert_eq!(UserConsole::terminal_count(&tb.world, node), 10);
    for i in 0..10 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert_eq!(h.last().map(String::as_str), Some("Done"), "job {i}: {h:?}");
        assert!(
            h.contains(&"Active".to_string()),
            "job {i} never ran: {h:?}"
        );
    }
    // stdout of every job staged back to the submit machine's GASS server.
    for i in 0..10 {
        let size = tb
            .world
            .store()
            .get::<u64>(tb.submit, &format!("gass/size/condor_g/out/gj{i}"));
        assert_eq!(size, Some(4096), "job {i} stdout missing");
    }
    // Static broker round-robins over both sites.
    let m = tb.world.metrics();
    assert_eq!(m.counter("condor_g.jobs_done"), 10);
    assert_eq!(m.counter("gram.submits"), 10);
}

#[test]
fn user_log_and_query_work() {
    use condor_g_suite::condor_g::{UserCmd, UserEvent};
    use condor_g_suite::gridsim::{Addr, AnyMsg};

    struct LogReader {
        scheduler: Addr,
    }
    impl Component for LogReader {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_hours(3), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(self.scheduler, UserCmd::GetLog);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(UserEvent::Log { entries }) = msg.downcast_ref::<UserEvent>() {
                let node = ctx.node();
                let count = entries.len() as u64;
                ctx.store().put(node, "log_len", &count);
                let texts: Vec<String> =
                    entries.iter().map(|(_, j, m)| format!("{j} {m}")).collect();
                ctx.store().put(node, "log_texts", &texts);
            }
        }
    }

    let mut tb = build(TestbedConfig::default());
    let console = UserConsole::new(tb.scheduler).submit_many(2, quick_jobs(2, 600, 0));
    tb.world.add_component(tb.submit, "console", console);
    tb.world.add_component(
        tb.submit,
        "logreader",
        LogReader {
            scheduler: tb.scheduler,
        },
    );
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));
    let len: u64 = tb.world.store().get(tb.submit, "log_len").unwrap();
    assert!(len >= 6, "log too short: {len}");
    let texts: Vec<String> = tb.world.store().get(tb.submit, "log_texts").unwrap();
    assert!(texts.iter().any(|t| t.contains("submitted")));
    assert!(texts.iter().any(|t| t.contains("Done")));
}

#[test]
fn cancel_mid_run() {
    let mut tb = build(TestbedConfig::default());
    let mut console = UserConsole::new(tb.scheduler).submit_many(1, quick_jobs(1, 36_000, 0));
    console.cancel_at = Some((Duration::from_mins(30), 0));
    let node = run_console(&mut tb, console, Duration::from_hours(2));
    let h = UserConsole::history_of(&tb.world, node, 0);
    assert_eq!(h.last().map(String::as_str), Some("Removed"), "{h:?}");
    assert_eq!(tb.world.metrics().counter("condor_g.jobs_removed"), 1);
    // The 10-hour job never completed anywhere.
    assert_eq!(tb.world.metrics().counter("site.completed"), 0);
}

#[test]
fn gatekeeper_machine_crash_is_survived() {
    // Failure type 2 (§4.2): "crash of the machine that manages the remote
    // resource". The job keeps running in the site scheduler; Condor-G
    // probes, waits, reconnects, restarts the JobManager, job completes.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 4)],
        ..TestbedConfig::default()
    });
    let console = UserConsole::new(tb.scheduler).submit_many(3, quick_jobs(3, 5400, 1024));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    // Let jobs start, then crash the interface machine for 40 minutes.
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(10));
    let gk_node = tb.sites[0].interface;
    tb.world.crash_node_now(gk_node);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(50));
    tb.world.restart_node_now(gk_node);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(6));
    assert_eq!(UserConsole::terminal_count(&tb.world, node), 3);
    for i in 0..3 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert_eq!(h.last().map(String::as_str), Some("Done"), "job {i}: {h:?}");
    }
    let m = tb.world.metrics();
    assert!(
        m.counter("gm.jm_restarts_requested") >= 1,
        "no restart was needed?"
    );
    assert_eq!(m.counter("condor_g.jobs_done"), 3);
    // No duplicate executions despite all the retries.
    assert_eq!(m.counter("site.completed"), 3);
}

#[test]
fn network_partition_is_survived() {
    // Failure type 4 (§4.2): the GridManager cannot distinguish a dead
    // resource machine from a partition; it waits and reconnects.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 4)],
        ..TestbedConfig::default()
    });
    let console = UserConsole::new(tb.scheduler).submit_many(2, quick_jobs(2, 5400, 0));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(10));
    // Partition the submit machine from the whole site for 1 hour.
    let site_nodes = vec![tb.sites[0].interface, tb.sites[0].cluster];
    tb.world.network_mut().partition(&[tb.submit], &site_nodes);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(70));
    tb.world.network_mut().heal(&[tb.submit], &site_nodes);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(6));
    assert_eq!(UserConsole::terminal_count(&tb.world, node), 2);
    for i in 0..2 {
        let h = UserConsole::history_of(&tb.world, node, i);
        assert_eq!(h.last().map(String::as_str), Some("Done"), "job {i}: {h:?}");
    }
    // Jobs ran exactly once each: the partition did not duplicate work.
    assert_eq!(tb.world.metrics().counter("site.completed"), 2);
}

#[test]
fn submit_machine_crash_recovers_from_persistent_queue() {
    // Failure type 3 (§4.2): "crash of the machine on which the
    // GridManager is executing". Everything on the submit node dies; the
    // persistent job queue brings it back.
    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("solo", 4)],
        ..TestbedConfig::default()
    });
    let console = UserConsole::new(tb.scheduler).submit_many(3, quick_jobs(3, 7200, 2048));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);

    // Boot hook: recover GASS server, mailer, scheduler (which re-creates
    // the GridManager), console.
    {
        let sites: Vec<_> = tb
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.gatekeeper))
            .collect();
        let proxy = tb.proxy.clone();
        let gass = tb.gass;
        let mailer = tb.mailer;
        let scheduler_addr = tb.scheduler;
        let trust = tb.trust.clone();
        tb.world.set_boot(node, move |b| {
            b.add_component(
                "gass",
                condor_g_suite::gass::GassServer::recover(trust.clone(), b.store(), b.node()),
            );
            b.add_component("mailer", condor_g_suite::condor_g::Mailer::new());
            let broker = Box::new(condor_g_suite::condor_g::StaticListBroker::new(
                sites
                    .iter()
                    .map(|(name, addr)| condor_g_suite::condor_g::GatekeeperInfo {
                        site: name.clone(),
                        addr: *addr,
                        ad: condor_g_suite::classads::ClassAd::new(),
                    })
                    .collect(),
            ));
            let config = condor_g_suite::condor_g::scheduler::SchedulerConfig {
                user: "jane".into(),
                credential: proxy.clone(),
                gass,
                pool_schedd: None,
                mailer: Some(mailer),
                user_addr: None,
                gm: condor_g_suite::condor_g::gridmanager::GmConfig {
                    user: "jane".into(),
                    mailer: Some(mailer),
                    ..Default::default()
                },
                email_on_termination: false,
                lean: false,
            };
            b.add_component(
                "scheduler",
                condor_g_suite::condor_g::Scheduler::recover(config, broker, b.store(), b.node()),
            );
            let _ = scheduler_addr;
        });
    }

    // Jobs start, submit machine dies for 30 minutes (jobs keep computing
    // at the site), comes back, reconnects, jobs complete.
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(15));
    tb.world.crash_node_now(node);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(45));
    tb.world.restart_node_now(node);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(8));

    let m = tb.world.metrics();
    assert_eq!(
        m.counter("condor_g.recoveries"),
        1,
        "scheduler never recovered"
    );
    assert_eq!(
        m.counter("condor_g.jobs_done"),
        3,
        "jobs lost across the crash"
    );
    // Each job ran exactly once: recovery reattached rather than resubmit.
    assert_eq!(m.counter("site.completed"), 3);
    assert!(m.counter("gm.job_recoveries") >= 1);
}

#[test]
fn termination_emails_are_sent_when_enabled() {
    use condor_g_suite::condor_g::Mailer;
    let mut tb = build(TestbedConfig::default());
    // Rebuild the scheduler with e-mail notifications on (the harness
    // default keeps test inboxes quiet).
    let config = condor_g_suite::condor_g::scheduler::SchedulerConfig {
        user: "jane".into(),
        credential: tb.proxy.clone(),
        gass: tb.gass,
        pool_schedd: None,
        mailer: Some(tb.mailer),
        user_addr: None,
        gm: condor_g_suite::condor_g::gridmanager::GmConfig {
            user: "jane".into(),
            ..Default::default()
        },
        email_on_termination: true,
        lean: false,
    };
    let broker = Box::new(condor_g_suite::condor_g::StaticListBroker::new(
        tb.sites
            .iter()
            .map(|s| condor_g_suite::condor_g::GatekeeperInfo {
                site: s.name.clone(),
                addr: s.gatekeeper,
                ad: condor_g_suite::classads::ClassAd::new(),
            })
            .collect(),
    ));
    let node = tb.submit;
    let scheduler = tb.world.add_component(
        node,
        "scheduler2",
        condor_g_suite::condor_g::Scheduler::new(config, broker),
    );
    let console = UserConsole::new(scheduler).submit_many(3, quick_jobs(3, 600, 0));
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(2));
    let inbox: Vec<(String, String)> = tb
        .world
        .store()
        .get(tb.mail_node, &Mailer::inbox_key("jane"))
        .unwrap_or_default();
    assert_eq!(inbox.len(), 3, "one termination email per job: {inbox:?}");
    assert!(inbox.iter().all(|(s, _)| s.contains("Done")));
}

#[test]
fn queued_jobs_migrate_to_free_sites() {
    // §4.4: "Monitoring of actual queuing and execution times allows for
    // the tuning of where to submit subsequent jobs and to migrate queued
    // jobs." One site is saturated for 10 hours; jobs landed there by the
    // static round-robin must migrate to the idle site instead of waiting.
    use condor_g_suite::gridsim::Addr;
    use condor_g_suite::gridsim::AnyMsg;
    use condor_g_suite::site::{JobSpec, LrmRequest};

    struct Filler {
        lrm: Addr,
    }
    impl Component for Filler {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..16 {
                ctx.send(
                    self.lrm,
                    LrmRequest::Submit {
                        client_job: i,
                        spec: JobSpec::simple(Duration::from_hours(10), "locals"),
                    },
                );
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Addr, _msg: AnyMsg) {}
    }

    let mut tb = build(TestbedConfig {
        sites: vec![SiteSpec::pbs("jammed", 8), SiteSpec::pbs("idle", 8)],
        gm: condor_g_suite::condor_g::gridmanager::GmConfig {
            user: "jane".into(),
            migrate_pending_after: Some(Duration::from_mins(20)),
            ..Default::default()
        },
        ..TestbedConfig::default()
    });
    let filler_lrm = tb.sites[0].lrm;
    let filler_node = tb.sites[0].cluster;
    tb.world
        .add_component(filler_node, "filler", Filler { lrm: filler_lrm });
    // 8 half-hour jobs: round-robin parks 4 behind the 10-hour backlog.
    let console = UserConsole::new(tb.scheduler).submit_many(8, quick_jobs(8, 1800, 0));
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));

    let m = tb.world.metrics();
    assert!(
        m.counter("gm.migrations") >= 4,
        "no migrations: {}",
        m.counter("gm.migrations")
    );
    assert_eq!(
        m.counter("condor_g.jobs_done"),
        8,
        "jobs stranded in the jam"
    );
    // Everything finished hours before the jammed site would have freed up.
    let idle_jobs = m
        .histogram("site.idle.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(
        idle_jobs, 8,
        "all user jobs should have ended up at the idle site"
    );
}
