//! End-to-end tests of the `condor-g-sim` binary: every shipped scenario
//! file runs to completion and delivers all of its jobs.

use std::process::Command;

/// Run the compiled binary on a scenario and return its stdout.
fn run(scenario: &str) -> String {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let out = Command::new(exe)
        .arg(format!(
            "{}/scenarios/{scenario}",
            env!("CARGO_MANIFEST_DIR")
        ))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{scenario} exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 report")
}

/// Extract the numeric value of a `| metric | value |`-style report row.
fn metric(report: &str, name: &str) -> u64 {
    report
        .lines()
        .find(|l| l.contains(name))
        .unwrap_or_else(|| panic!("no row {name:?} in:\n{report}"))
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .next_back()
        .unwrap_or_else(|| panic!("no number in row {name:?}"))
}

#[test]
fn demo_scenario_completes_every_job() {
    let report = run("demo.scn");
    assert_eq!(metric(&report, "jobs submitted"), 24);
    assert_eq!(metric(&report, "jobs done"), 24, "{report}");
    assert_eq!(metric(&report, "jobs failed"), 0);
    // The scripted gatekeeper crash exercised recovery.
    assert!(
        report.contains("job 0:"),
        "per-job outcomes missing:\n{report}"
    );
}

#[test]
fn outage_scenario_is_exactly_once_despite_crashes_and_partition() {
    let report = run("outage.scn");
    assert_eq!(metric(&report, "jobs submitted"), 12);
    assert_eq!(metric(&report, "jobs done"), 12, "{report}");
    assert_eq!(metric(&report, "jobs failed"), 0);
}

#[test]
fn glidein_campaign_runs_everything_through_the_personal_pool() {
    let report = run("glidein_campaign.scn");
    assert_eq!(metric(&report, "jobs done"), 40, "{report}");
    assert!(metric(&report, "glideins started") >= 10, "{report}");
}

#[test]
fn heterogeneous_grid_spreads_work_across_all_schedulers() {
    let report = run("heterogeneous.scn");
    assert_eq!(metric(&report, "jobs done"), 30, "{report}");
    assert_eq!(metric(&report, "jobs failed"), 0);
}

#[test]
fn bad_scenario_reports_the_offending_line() {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let dir = std::env::temp_dir().join("condor-g-scn-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.scn");
    std::fs::write(&path, "seed 1\nsite pbs a 4\nfrobnicate the grid\n").unwrap();
    let out = Command::new(exe).arg(&path).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn missing_file_is_a_usage_error() {
    let exe = env!("CARGO_BIN_EXE_condor-g-sim");
    let out = Command::new(exe)
        .arg("/nonexistent/path.scn")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
