//! Offline stand-in for `serde`.
//!
//! Implements the serde data model — the `Serialize`/`Serializer` and
//! `Deserialize`/`Deserializer` trait families plus impls for the std types
//! this workspace stores — with signatures compatible with upstream serde,
//! so the crates written against real serde compile unchanged. Formats and
//! derives written against this stub (the gridsim codec, `serde_derive`)
//! interoperate exactly as with upstream.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
