//! The deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors a deserializer can produce.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drive `deserializer` and build `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful seed producing a value from a [`Deserializer`].
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Drive `deserializer` and build the value.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format the serde data model can be read from.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Hint: format decides the type (self-describing formats only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a borrowed or transient string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect borrowed or transient bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a tuple of known arity.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a struct with the given fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect an enum with the given variants.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect any value, discarding it.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
}

/// Receives values from a [`Deserializer`].
pub trait Visitor<'de>: Sized {
    /// The value being built.
    type Value;

    /// Describe what this visitor expects (for error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Receive a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected bool, expecting {}", Expected(&self))))
    }
    /// Receive an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Receive an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Receive an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Receive an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected integer, expecting {}", Expected(&self))))
    }
    /// Receive a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Receive a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Receive a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Receive a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!(
            "unexpected unsigned integer, expecting {}",
            Expected(&self)
        )))
    }
    /// Receive an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Receive an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected float, expecting {}", Expected(&self))))
    }
    /// Receive a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let mut buf = [0u8; 4];
        self.visit_str(v.encode_utf8(&mut buf))
    }
    /// Receive a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected string, expecting {}", Expected(&self))))
    }
    /// Receive a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Receive an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Receive transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected bytes, expecting {}", Expected(&self))))
    }
    /// Receive bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Receive an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Receive `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!("unexpected none, expecting {}", Expected(&self))))
    }
    /// Receive `Option::Some`; `deserializer` carries the inner value.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(format_args!("unexpected some, expecting {}", Expected(&self))))
    }
    /// Receive `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!("unexpected unit, expecting {}", Expected(&self))))
    }
    /// Receive a newtype struct; `deserializer` carries the inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(format_args!(
            "unexpected newtype struct, expecting {}",
            Expected(&self)
        )))
    }
    /// Receive a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom(format_args!("unexpected sequence, expecting {}", Expected(&self))))
    }
    /// Receive a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom(format_args!("unexpected map, expecting {}", Expected(&self))))
    }
    /// Receive an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom(format_args!("unexpected enum, expecting {}", Expected(&self))))
    }
}

/// Adapter rendering a visitor's `expecting` output in error messages.
struct Expected<'a, V>(&'a V);

impl<'a, 'de, V: Visitor<'de>> Display for Expected<'a, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Pull the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Pull the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Remaining-length hint, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to map entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Pull the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Pull the value for the key just returned, with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Pull the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Pull the value for the key just returned.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Pull the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Remaining-length hint, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to an enum's variant tag.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Access to the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Read the variant tag with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Read the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to an enum variant's payload.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// The variant carries no data.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// The variant carries one value; read it with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// The variant carries one value.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// The variant carries a tuple payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// The variant carries named fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a primitive into a deserializer over itself.
pub trait IntoDeserializer<'de, E: Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wrap `self` in a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer yielding a single `u32` (used for enum variant indices).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer { value: self, marker: PhantomData }
    }
}

macro_rules! u32_forward {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    u32_forward! {
        deserialize_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64
        deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf
        deserialize_option deserialize_unit
        deserialize_seq deserialize_map
        deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

// ----- Deserialize impls for std types ----------------------------------

macro_rules! deserialize_prim {
    ($($ty:ty, $method:ident, $visit:ident, $expect:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(PrimVisitor)
            }
        }
    )*};
}

deserialize_prim! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Into::into)
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for BTreeMapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashMapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashMapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeSetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for BTreeSetVisitor<T> {
            type Value = std::collections::BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(BTreeSetVisitor(PhantomData))
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashSetVisitor<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for HashSetVisitor<T, H>
        where
            T: Deserialize<'de> + Eq + std::hash::Hash,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashSet<T, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashSet::with_capacity_and_hasher(
                    seq.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(HashSetVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr => $($name:ident)+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_tuple! {
    (1 => A)
    (2 => A B)
    (3 => A B C)
    (4 => A B C D)
    (5 => A B C D E)
    (6 => A B C D E F)
    (7 => A B C D E F G)
    (8 => A B C D E F G H)
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    out.push(
                        seq.next_element()?
                            .ok_or_else(|| Error::custom("array too short"))?,
                    );
                }
                out.try_into().map_err(|_| Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}
