//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! small API subset the workspace uses: `StdRng` (a xoshiro256++ generator —
//! not bit-compatible with upstream `rand`, but deterministic and of high
//! statistical quality), `SeedableRng`, `RngCore`, and the `Rng` extension
//! methods `gen` / `gen_range`.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced here).
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (always succeeds here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: Default + AsMut<[u8]>;
    /// Build from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Build from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait RandValue {
    /// Draw one value.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_rand_int {
    ($($t:ty => $m:ident),*) => {$(
        impl RandValue for $t {
            fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_rand_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
               u64 => next_u64, usize => next_u64,
               i8 => next_u32, i16 => next_u32, i32 => next_u32,
               i64 => next_u64, isize => next_u64);

impl RandValue for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl RandValue for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandValue for f32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::rand(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::rand(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniform value of type `T`.
    fn gen<T: RandValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::rand(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand`'s `StdRng`; this workspace
    /// only requires determinism within a build.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: i32 = r.gen_range(-4..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
