//! Offline stand-in for `serde_derive`.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are not
//! vendored) and emits `Serialize`/`Deserialize` impls matching upstream
//! serde_derive's data layout: structs serialize positionally, enums by u32
//! variant index. Supported shapes are exactly what this workspace derives:
//! non-generic named/tuple/unit structs and enums with unit/newtype/tuple/
//! struct variants, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    UnitStruct { name: String },
    TupleStruct { name: String, arity: usize },
    NamedStruct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ----- parsing ----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by this offline stub");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        kw => panic!("serde_derive: `{kw}` items cannot derive Serialize/Deserialize"),
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Skip a type expression up to (not including) the next top-level comma.
/// Tracks `<`/`>` depth so commas inside generic arguments don't split.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = (depth - 1).max(0),
                ',' if depth == 0 => return,
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other}"),
        }
        i += 1; // field name
        i += 1; // `:`
        skip_type(&tokens, &mut i);
        i += 1; // `,` (or past end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_type(&tokens, &mut i);
        i += 1; // `,`
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(tt) = tokens.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ----- code generation --------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::UnitStruct { name } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 __serializer.serialize_unit_struct(\"{name}\")\n}}\n}}\n"
            ));
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
            } else {
                let mut b = format!(
                    "let mut __ts = __serializer.serialize_tuple_struct(\"{name}\", {arity})?;\n"
                );
                for idx in 0..*arity {
                    b.push_str(&format!(
                        "serde::ser::SerializeTupleStruct::serialize_field(&mut __ts, &self.{idx})?;\n"
                    ));
                }
                b.push_str("serde::ser::SerializeTupleStruct::end(__ts)");
                b
            };
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
            ));
        }
        Item::NamedStruct { name, fields } => {
            let n = fields.len();
            let mut body =
                format!("let mut __st = __serializer.serialize_struct(\"{name}\", {n})?;\n");
            for f in fields {
                body.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(__st)");
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => __serializer\
                             .serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => __serializer\
                             .serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __tv = __serializer.serialize_tuple_variant(\
                             \"{name}\", {idx}u32, \"{vname}\", {arity})?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeTupleVariant::end(__tv)\n},\n");
                        arms.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let n = fields.len();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __sv = __serializer.serialize_struct_variant(\
                             \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// `seq.next_element()? → value or "missing field" error` as an expression.
fn next_elem(what: &str) -> String {
    format!(
        "match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
         core::option::Option::Some(__v) => __v,\n\
         core::option::Option::None => return core::result::Result::Err(\
         <__A::Error as serde::de::Error>::custom(\"missing field `{what}`\")),\n}}"
    )
}

/// A visitor struct + `visit_seq` that builds `ctor` from consecutive
/// sequence elements. Returns (visitor type definition, visitor type name).
fn seq_visitor(ty: &str, vis_name: &str, expecting: &str, ctor_body: &str) -> String {
    format!(
        "struct {vis_name};\n\
         impl<'de> serde::de::Visitor<'de> for {vis_name} {{\n\
         type Value = {ty};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
         __f.write_str(\"{expecting}\")\n}}\n\
         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> core::result::Result<Self::Value, __A::Error> {{\n\
         let __out = {ctor_body};\n\
         let _ = &mut __seq;\n\
         core::result::Result::Ok(__out)\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
             -> core::result::Result<Self, __D::Error> {{\n\
             struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n}}\n\
             fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<{name}, __E> {{\n\
             core::result::Result::Ok({name})\n}}\n}}\n\
             __deserializer.deserialize_unit_struct(\"{name}\", __Visitor)\n}}\n}}\n"
        ),
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
             -> core::result::Result<Self, __D::Error> {{\n\
             struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
             __f.write_str(\"tuple struct {name}\")\n}}\n\
             fn visit_newtype_struct<__D2: serde::Deserializer<'de>>(self, __d: __D2) \
             -> core::result::Result<{name}, __D2::Error> {{\n\
             core::result::Result::Ok({name}(serde::Deserialize::deserialize(__d)?))\n}}\n\
             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
             -> core::result::Result<{name}, __A::Error> {{\n\
             core::result::Result::Ok({name}({elem}))\n}}\n}}\n\
             __deserializer.deserialize_newtype_struct(\"{name}\", __Visitor)\n}}\n}}\n",
            elem = next_elem("0"),
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity).map(|k| next_elem(&k.to_string())).collect();
            let ctor = format!("{name}({})", elems.join(",\n"));
            let visitor = seq_visitor(name, "__Visitor", &format!("tuple struct {name}"), &ctor);
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 {visitor}\
                 __deserializer.deserialize_tuple_struct(\"{name}\", {arity}, __Visitor)\n}}\n}}\n"
            )
        }
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: {}", next_elem(f))).collect();
            let ctor = format!("{name} {{\n{}\n}}", inits.join(",\n"));
            let visitor = seq_visitor(name, "__Visitor", &format!("struct {name}"), &ctor);
            let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 {visitor}\
                 __deserializer.deserialize_struct(\"{name}\", &[{}], __Visitor)\n}}\n}}\n",
                field_list.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                         serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         core::result::Result::Ok({name}::{vname})\n}},\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => core::result::Result::Ok({name}::{vname}(\
                         serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let elems: Vec<String> =
                            (0..*arity).map(|k| next_elem(&k.to_string())).collect();
                        let ctor = format!("{name}::{vname}({})", elems.join(",\n"));
                        let visitor = seq_visitor(
                            name,
                            &format!("__Variant{idx}Visitor"),
                            &format!("tuple variant {name}::{vname}"),
                            &ctor,
                        );
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{visitor}\
                             serde::de::VariantAccess::tuple_variant(\
                             __variant, {arity}, __Variant{idx}Visitor)\n}},\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| format!("{f}: {}", next_elem(f))).collect();
                        let ctor = format!("{name}::{vname} {{\n{}\n}}", inits.join(",\n"));
                        let visitor = seq_visitor(
                            name,
                            &format!("__Variant{idx}Visitor"),
                            &format!("struct variant {name}::{vname}"),
                            &ctor,
                        );
                        let field_list: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{visitor}\
                             serde::de::VariantAccess::struct_variant(\
                             __variant, &[{}], __Variant{idx}Visitor)\n}},\n",
                            field_list.join(", ")
                        ));
                    }
                }
            }
            let variant_list: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n}}\n\
                 fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> core::result::Result<{name}, __A::Error> {{\n\
                 let (__idx, __variant): (u32, __A::Variant) = \
                 serde::de::EnumAccess::variant(__data)?;\n\
                 match __idx {{\n{arms}\
                 _ => core::result::Result::Err(<__A::Error as serde::de::Error>::custom(\
                 \"invalid variant index for {name}\")),\n}}\n}}\n}}\n\
                 __deserializer.deserialize_enum(\"{name}\", &[{}], __Visitor)\n}}\n}}\n",
                variant_list.join(", ")
            )
        }
    }
}
