//! Offline stand-in for `criterion`.
//!
//! Provides the API subset this workspace's benches use. Each benchmark
//! routine is executed a handful of times and timed with `std::time`; there
//! is no statistical analysis, warm-up, or report generation. This keeps
//! `cargo test` / `cargo bench` working without registry access.

use std::time::Instant;

/// How many times to invoke each routine.
const RUNS: u32 = 3;

/// Re-export of `std::hint::black_box` for API parity.
pub use std::hint::black_box;

/// Batch sizing hints (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives a single benchmark routine.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Time `f` over a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            black_box(f());
        }
    }

    /// Time `routine` with inputs produced by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the nominal sample size (accepted, unused).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Set the nominal measurement time (accepted, unused).
    pub fn measurement_time(self, _d: std::time::Duration) -> Criterion {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate throughput (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Set the group's sample size (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: RUNS };
    let start = Instant::now();
    f(&mut b);
    let elapsed = start.elapsed();
    eprintln!("bench {name}: {RUNS} runs in {elapsed:?} (~{:?}/run)", elapsed / RUNS);
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes flags like `--test`;
            // run the benches once regardless — they are cheap here.
            $($group();)+
        }
    };
}
