//! Offline stand-in for the `bytes` crate: a cheaply-cloneable immutable
//! byte buffer with zero-copy slicing, covering the subset this workspace
//! uses.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice over `range` (relative to this buffer).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    /// Render like upstream `bytes`: a byte-string literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let b = Bytes::from("0123456789".to_string());
        let s = b.slice(2..5);
        assert_eq!(&s[..], b"234");
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], b"34");
    }

    #[test]
    fn equality_and_from() {
        assert_eq!(Bytes::from("abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }
}
