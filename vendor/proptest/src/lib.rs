//! Offline stand-in for `proptest`.
//!
//! Implements the generate-and-check core of property testing with the API
//! subset this workspace's tests use: the `proptest!`/`prop_oneof!` macros,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! range and `&'static str`-pattern strategies, tuple strategies, and the
//! `collection`/`option`/`sample` modules. There is no shrinking and no
//! persistence; each test runs a fixed number of deterministic cases seeded
//! from the test's name, so failures reproduce exactly across runs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod collection;
pub mod option;
pub mod sample;

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

// ----- RNG --------------------------------------------------------------

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a fresh stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ----- test-case outcome ------------------------------------------------

/// Why a single generated case did not pass.
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by an assumption; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A property failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "Fail({r})"),
            TestCaseError::Reject(r) => write!(f, "Reject({r})"),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// The deterministic case loop behind the `proptest!` macro.
pub mod runner {
    use super::{TestCaseError, TestRng};

    /// Cases each property runs.
    const CASES: u32 = 64;
    /// Rejection budget across the whole run.
    const MAX_REJECTS: u32 = 4096;

    fn fnv(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `body` for a fixed number of seeded cases, panicking on failure.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv(name);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        let mut stream = 0u64;
        while passed < CASES {
            let mut rng = TestRng::new(base ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D));
            stream += 1;
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > MAX_REJECTS {
                        panic!("proptest {name}: too many rejected cases ({rejects})");
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!("proptest {name}: case {passed} (stream {stream}) failed: {reason}");
                }
            }
        }
    }
}

// ----- Strategy core ----------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values the predicate accepts.
    fn prop_filter<R: Into<String>, P: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        pred: P,
    ) -> Filter<Self, P>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, reason: reason.into() }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. Expanded
    /// eagerly to `depth` levels, each level falling back to the leaf half
    /// of the time so generated trees stay bounded.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    pred: P,
    reason: String,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason)
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from the alternative strategies; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ----- any / Arbitrary --------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform over bit patterns: exercises subnormals, infinities, NaN.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ----- range strategies -------------------------------------------------

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

// ----- string pattern strategy ------------------------------------------

/// `&'static str` is interpreted as a simplified regex: a sequence of
/// character classes (`[a-z0-9_-]`), `\PC` (any printable), or literal
/// characters, each with an optional `{m}`/`{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                // Only the escapes this workspace's patterns use.
                match (chars.get(i + 1), chars.get(i + 2)) {
                    (Some('P'), Some('C')) => {
                        i += 3;
                        (' '..='~').collect()
                    }
                    (Some(&c), _) => {
                        i += 2;
                        vec![c]
                    }
                    (None, _) => panic!("pattern `{pattern}`: trailing backslash"),
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = parse_quantifier(&chars, &mut i);
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        if alphabet.is_empty() {
            continue;
        }
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// Parse a `[...]` body starting just inside the bracket; returns the
/// expanded alphabet and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            set.push(chars[i + 1]);
            i += 2;
            continue;
        }
        // `a-z` is a range unless `-` is the last char before `]`.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (c, chars[i + 2]);
            assert!(lo <= hi, "bad class range {lo}-{hi}");
            set.extend(lo..=hi);
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    (set, i + 1)
}

/// Parse `{m}` / `{m,n}` at `*i` if present; defaults to exactly one.
fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    *i += 1;
    let read_number = |i: &mut usize| -> usize {
        let start = *i;
        while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
        chars[start..*i].iter().collect::<String>().parse().expect("bad quantifier")
    };
    let lo = read_number(i);
    let hi = if chars.get(*i) == Some(&',') {
        *i += 1;
        read_number(i)
    } else {
        lo
    };
    assert_eq!(chars.get(*i), Some(&'}'), "unterminated quantifier");
    *i += 1;
    (lo, hi)
}

// ----- tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ----- macros -----------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` (the attribute is written at the call site) running
/// the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::runner::run(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __outcome
            });
        }
    )*};
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alternative)),+])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the process) so the runner can report the generated inputs' stream.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` != `{}`: {:?} vs {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Assert two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` == `{}`: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn patterns_respect_class_and_quantifier() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "bad len {}", s.len());
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad chars {s}");
        }
        let lit = crate::Strategy::generate(&"[a-zA-Z0-9 _.,/:-]{0,16}", &mut rng);
        assert!(lit.len() <= 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = crate::Strategy::generate(&(1u32..=64), &mut rng);
            assert!((1..=64).contains(&w));
            let f = crate::Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn runner_drives_cases(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 3);
            let _ = flip;
        }
    }
}
