//! Sampling strategies.

use crate::{Strategy, TestRng};

/// Strategy picking uniformly from a fixed list.
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len() as u64) as usize].clone()
    }
}

/// Pick uniformly from `choices`; must be non-empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}
