//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::{Strategy, TestRng};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeMap` built from key/value strategies.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.generate(rng);
        (0..n).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}

/// A map of up to `size` entries (duplicate keys collapse).
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

/// Strategy for `BTreeSet` built from an element strategy.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A set of up to `size` elements (duplicates collapse).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}
