//! `Option` strategies.

use crate::{Strategy, TestRng};

/// Strategy for `Option<S::Value>`; `None` one case in four.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Generate `Some` of the inner strategy most of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
