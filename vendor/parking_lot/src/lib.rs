//! Offline stand-in for `parking_lot`: std-backed locks with the
//! panic-free (poison-ignoring) `parking_lot` API shape.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Lock, ignoring poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
