//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace (parallel
//! replication in the bench harness). This stand-in executes spawned
//! closures sequentially, which preserves the semantics (each closure runs
//! to completion before `scope` returns) at the cost of parallel speedup.

/// Scoped "threads".
pub mod thread {
    /// The scope handle passed to the `scope` closure and to each spawned
    /// closure.
    pub struct Scope {
        _private: (),
    }

    /// Handle to a spawned task's result.
    pub struct ScopedJoinHandle<T> {
        result: T,
    }

    impl<T> ScopedJoinHandle<T> {
        /// The closure's return value (already computed).
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            Ok(self.result)
        }
    }

    impl Scope {
        /// Run `f` immediately (sequential execution).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
        where
            F: FnOnce(&Scope) -> T,
        {
            ScopedJoinHandle { result: f(&Scope { _private: () }) }
        }
    }

    /// Run `f` with a scope; all "spawned" tasks complete before return.
    pub fn scope<F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope) -> R,
    {
        Ok(f(&Scope { _private: () }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_runs_all_spawns() {
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u64 * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }
}
