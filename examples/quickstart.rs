//! Quickstart: submit a handful of jobs to a two-site grid through the
//! Condor-G agent and watch them run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::workloads::qap::{solve_qap, QapInstance};

fn main() {
    // A grid: one PBS cluster, one LSF machine, and your Condor-G agent.
    let mut tb = build(TestbedConfig {
        seed: 7,
        trace: true,
        sites: vec![
            SiteSpec::pbs("pbs.cluster.edu", 8),
            SiteSpec::lsf("lsf.hpc.edu", 4),
        ],
        ..TestbedConfig::default()
    });

    // Five jobs, each "solving a QAP subproblem" for 45 minutes and
    // shipping 1 MB of results home.
    let spec = GridJobSpec::grid("qap-worker", "/home/jane/app.exe", Duration::from_mins(45))
        .with_stdout(1_000_000);
    let console = UserConsole::new(tb.scheduler).submit_many(5, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);

    println!("submitting 5 jobs to 2 sites through Condor-G...\n");
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(3));

    println!("per-job event history:");
    for i in 0..5 {
        let h = UserConsole::history_of(&tb.world, node, i);
        println!("  job {i}: {}", h.join(" -> "));
    }

    let m = tb.world.metrics();
    println!("\nagent metrics:");
    for counter in [
        "condor_g.submitted",
        "gm.submissions",
        "gram.submits",
        "gram.commits",
        "site.completed",
        "condor_g.jobs_done",
    ] {
        println!("  {counter:<24} {}", m.counter(counter));
    }
    println!(
        "\nall stdout staged home: {} bulk bytes moved over the WAN",
        m.counter("net.bulk_bytes")
    );

    // And, because the workers were "solving QAP subproblems": do one for
    // real, with the same branch-and-bound + Gilmore-Lawler machinery the
    // paper's record computation used (at miniature scale).
    let qap = QapInstance::synthetic(8, 2026);
    let sol = solve_qap(&qap);
    println!(
        "\nbonus, an actual QAP(n=8) solved locally: optimum {:.0}, {} B&B nodes, {} LAPs evaluated",
        sol.cost, sol.nodes_explored, sol.laps_solved
    );

    println!("\nprotocol ladder of job 0 (from the simulation trace):");
    for e in tb.world.trace().events().iter().filter(|e| {
        e.detail.contains("gj0") || (e.kind.starts_with("gram.") && e.detail.contains("seq 0"))
    }) {
        println!("  {e}");
    }
}
