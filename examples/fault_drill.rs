//! A fault drill: watch Condor-G survive, live, the four failure classes
//! of paper §4.2 in one run — JobManager crash, resource-machine crash,
//! submit-machine crash, and a network partition — without losing or
//! duplicating a single job.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 13,
        trace: true,
        sites: vec![SiteSpec::pbs("target-site", 8)],
        ..TestbedConfig::default()
    });
    let spec = GridJobSpec::grid("survivor", "/home/jane/app.exe", Duration::from_hours(4))
        .with_stdout(10_000);
    let console = UserConsole::new(tb.scheduler).submit_many(4, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    let gk_node = tb.sites[0].interface;
    let cluster = tb.sites[0].cluster;

    println!("4 four-hour jobs submitted; now the world starts failing...\n");

    // t=30min: the gatekeeper/JobManager machine crashes for 45 minutes.
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(30));
    println!("[t=0h30] CRASH: gatekeeper machine down (jobs keep computing at the site)");
    tb.world.crash_node_now(gk_node);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(75));
    println!("[t=1h15] RESTART: gatekeeper machine back; Condor-G restarts JobManagers");
    tb.world.restart_node_now(gk_node);

    // t=2h: network partition between submit machine and the site.
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(2));
    println!("[t=2h00] PARTITION: submit machine cut off from the site for 40 minutes");
    tb.world
        .network_mut()
        .partition(&[node], &[gk_node, cluster]);
    tb.world
        .run_until(SimTime::ZERO + Duration::from_hours(2) + Duration::from_mins(40));
    println!("[t=2h40] HEAL: network restored; the GridManager reconnects");
    tb.world.network_mut().heal(&[node], &[gk_node, cluster]);

    tb.world.run_until(SimTime::ZERO + Duration::from_hours(10));

    println!("\noutcome:");
    for i in 0..4 {
        let h = UserConsole::history_of(&tb.world, node, i);
        println!("  job {i}: {}", h.join(" -> "));
    }
    let m = tb.world.metrics();
    println!("\nledger:");
    println!("  jobs submitted     {}", m.counter("condor_g.submitted"));
    println!("  site executions    {}", m.counter("site.completed"));
    println!("  jobs done          {}", m.counter("condor_g.jobs_done"));
    println!("  probes sent        {}", m.counter("gm.probes"));
    println!("  probes missed      {}", m.counter("gm.probes_missed"));
    println!("  JobManager restarts {}", m.counter("gram.jm_restarts"));
    println!(
        "  duplicate submits deduped {}",
        m.counter("gram.duplicate_submits")
    );
    assert_eq!(m.counter("condor_g.jobs_done"), 4, "a job was lost!");
    assert_eq!(
        m.counter("site.completed"),
        4,
        "a job was duplicated or lost at the site!"
    );
    println!("\nexactly-once held: 4 jobs submitted, 4 site executions, 4 completions.");

    println!("\nrecovery-related trace events:");
    for e in tb.world.trace().events().iter().filter(|e| {
        matches!(
            e.kind,
            "gm.jm_lost" | "gram.jm_restart" | "gram.dedup" | "gm.attempt_failed"
        )
    }) {
        println!("  {e}");
    }
}
