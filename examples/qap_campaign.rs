//! A miniature of the paper's record-setting QAP campaign (Experience 1):
//! a Master–Worker run over GlideIns at heterogeneous sites — Condor
//! pools, a PBS cluster, an LSF supercomputer — surviving preemption and
//! delivering CPU-hours around the clock.
//!
//! ```text
//! cargo run --release --example qap_campaign
//! ```

use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::rng::Dist;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::stats::Table;
use condor_g_suite::workloads::{MwConfig, MwMaster};

fn main() {
    // Five sites (the full ten-site version lives in the experiment
    // harness: crates/bench/src/bin/exp_qap.rs).
    let sites = vec![
        SiteSpec::condor_pool("wisc-pool", 64),
        SiteSpec::condor_pool("ufl-pool", 32),
        SiteSpec::pbs("anl-cluster", 32),
        SiteSpec::lsf("nrl-super", 24),
        SiteSpec::condor_pool("iowa-pool", 16),
    ];
    let site_names: Vec<String> = sites.iter().map(|s| s.name.clone()).collect();
    let mut tb = build(TestbedConfig {
        seed: 2001,
        sites,
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(24, Duration::from_hours(12));
    let master = MwMaster::new(
        tb.scheduler,
        MwConfig {
            target_outstanding: 120,
            total_tasks: Some(2_000),
            // Heavy-tailed LAP-batch service times, ~17 min median.
            task_runtime: Dist::LogNormal {
                median: 1000.0,
                sigma: 0.9,
            },
            ..MwConfig::default()
        },
    );
    let node = tb.submit;
    tb.world.add_component(node, "mw-master", master);

    println!("running a 2,000-task Master-Worker campaign over 5 sites...");
    let horizon = Duration::from_days(2);
    tb.world.run_until(SimTime::ZERO + horizon);

    let m = tb.world.metrics();
    let end = tb.world.now();
    let busy = m.series("condor.busy_startds");
    let cpu_hours = busy
        .map(|s| s.integral(SimTime::ZERO, end) / 3600.0)
        .unwrap_or(0.0);
    let avg = busy
        .map(|s| s.time_weighted_mean(SimTime::ZERO, end))
        .unwrap_or(0.0);
    let peak = busy.map(|s| s.max()).unwrap_or(0.0);

    println!("\ncampaign summary (cf. paper: 95,000 CPU-hours, avg 653, peak 1007):");
    let mut t = Table::new(&["metric", "value"]);
    t.row(&[
        "tasks completed".into(),
        format!("{}", MwMaster::completed(&tb.world, node)),
    ]);
    t.row(&[
        "virtual days elapsed".into(),
        format!("{:.2}", end.as_secs_f64() / 86400.0),
    ]);
    t.row(&["CPU-hours delivered".into(), format!("{cpu_hours:.0}")]);
    t.row(&["avg workers active".into(), format!("{avg:.1}")]);
    t.row(&["peak workers active".into(), format!("{peak:.0}")]);
    t.row(&[
        "glideins started".into(),
        format!("{}", m.counter("glidein.started")),
    ]);
    t.row(&[
        "preemptions survived".into(),
        format!("{}", m.counter("condor.vacated")),
    ]);
    t.row(&[
        "checkpoints taken".into(),
        format!("{}", m.counter("condor.checkpoints")),
    ]);
    t.row(&[
        "remote I/O batches".into(),
        format!("{}", m.counter("condor.syscall_batches")),
    ]);
    println!("{}", t.render());

    println!("per-site busy-CPU averages:");
    let mut t = Table::new(&["site", "avg busy CPUs"]);
    for name in &site_names {
        // Glideins run under the personal pool, so per-site load shows up
        // in the LRM gauges (glidein jobs occupy site slots).
        let s = m.series(&format!("site.{name}.busy"));
        let avg = s
            .map(|s| s.time_weighted_mean(SimTime::ZERO, end))
            .unwrap_or(0.0);
        t.row(&[name.clone(), format!("{avg:.1}")]);
    }
    println!("{}", t.render());
}
