//! The GridGaussian portal (Experience 3, paper §6): Gaussian-style jobs
//! run on GlideIn resources while G-Cat streams their growing output to a
//! Mass Storage System as partial chunks — so the user can view results
//! *while the job still runs*, buffered through local scratch so network
//! hiccups never stall the application.
//!
//! ```text
//! cargo run --release --example grid_gaussian
//! ```

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gass::gcat::{GCat, GCatFeed};
use condor_g_suite::gass::{FileData, GassServer};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::AnyMsg;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::workloads::stats::Table;

/// A "Gaussian98" process: produces output bursts into G-Cat's scratch
/// buffer for `bursts` minutes.
struct Gaussian {
    gcat: Addr,
    bursts: u64,
    bytes_per_burst: u64,
}

impl Component for Gaussian {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.bursts {
            ctx.set_timer(Duration::from_mins(i + 1), i);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        ctx.send_local(
            self.gcat,
            GCatFeed(FileData::bulk(self.bytes_per_burst, tag)),
        );
    }
}

/// Polls the MSS for how much of the output a portal user could read.
struct PortalViewer {
    mss_node: NodeId,
    samples: Vec<(u64, u64)>, // (minute, visible bytes)
}

impl Component for PortalViewer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration::from_mins(10), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
        let visible: u64 = ctx
            .store()
            .get(self.mss_node, "gass/size/mss/jane/g98.out")
            .unwrap_or(0);
        let minute = ctx.now().micros() / 60_000_000;
        self.samples.push((minute, visible));
        let node = ctx.node();
        let samples = self.samples.clone();
        ctx.store().put(node, "viewer/samples", &samples);
        if minute < 180 {
            ctx.set_timer(Duration::from_mins(10), 0);
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Addr, _msg: AnyMsg) {}
}

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 98,
        sites: vec![SiteSpec::pbs("compute", 16)],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(4, Duration::from_hours(8));

    // The MSS is its own storage site.
    let mss_node = tb.world.add_node("mss.ncsa.edu");
    let trust = {
        // Rebuild the trust root the harness used (same CA seed recipe).
        let mut ca = condor_g_suite::gsi::CertificateAuthority::new("/CN=Globus CA", 98 ^ 0xCA);
        let _ = ca.issue_identity("/CN=jane", Duration::from_days(3650));
        ca.trust_root()
    };
    let mss = tb
        .world
        .add_component(mss_node, "mss", GassServer::new(trust));

    // A 2-hour Gaussian job runs on a glidein; its stdout goes through
    // G-Cat on the execution site to the MSS.
    let exec_node = tb.sites[0].cluster;
    let gcat = tb.world.add_component(
        exec_node,
        "gcat",
        GCat::new(
            mss,
            "/mss/jane/g98.out",
            tb.proxy.clone(),
            Duration::from_secs(30),
        ),
    );
    tb.world.add_component(
        exec_node,
        "gaussian",
        Gaussian {
            gcat,
            bursts: 120,
            bytes_per_burst: 400_000,
        },
    );
    // The pool job that "is" the Gaussian run, for the agent's accounting.
    let spec = GridJobSpec::pool("g98", "/home/jane/worker.exe", Duration::from_hours(2));
    let console = UserConsole::new(tb.scheduler).submit_many(1, spec);
    tb.world.add_component(tb.submit, "console", console);
    let viewer_node = tb.world.add_node("portal.ncsa.edu");
    tb.world.add_component(
        viewer_node,
        "viewer",
        PortalViewer {
            mss_node,
            samples: Vec::new(),
        },
    );

    println!("running Gaussian with G-Cat streaming to MSS...\n");
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));

    let samples: Vec<(u64, u64)> = tb
        .world
        .store()
        .get(viewer_node, "viewer/samples")
        .unwrap_or_default();
    println!("output visible at MSS while the job runs (total output 48.0 MB over 120 min):");
    let mut t = Table::new(&["minute", "MB visible at MSS", "produced so far (MB)"]);
    for (minute, bytes) in &samples {
        let produced = (minute.min(&120) * 400_000) as f64 / 1e6;
        t.row(&[
            format!("{minute}"),
            format!("{:.1}", *bytes as f64 / 1e6),
            format!("{produced:.1}"),
        ]);
    }
    println!("{}", t.render());
    let m = tb.world.metrics();
    println!(
        "G-Cat: {} chunks shipped, {} bytes buffered through local scratch, {} retries",
        m.counter("gcat.chunks"),
        m.counter("gcat.fed_bytes"),
        m.counter("gcat.retries"),
    );
    let mid = samples
        .iter()
        .find(|(min, _)| *min >= 60)
        .map(|&(_, b)| b)
        .unwrap_or(0);
    assert!(
        mid > 10_000_000,
        "mid-run visibility failed: {mid} bytes at t=60min"
    );
    println!(
        "\nmid-run check: {:.1} MB already viewable at t=60min — the paper's requirement holds",
        mid as f64 / 1e6
    );
}
