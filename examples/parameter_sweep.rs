//! A Nimrod-style parameter sweep run through Condor-G (paper §7: the
//! agent adds failure handling, credential management and dependencies
//! that Nimrod-G lacks — here the sweep simply rides on top).
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::workloads::{Axis, ParamSweep};

fn main() {
    let sweep = ParamSweep::new("/home/jane/app.exe", Duration::from_mins(25))
        .axis(Axis::of("model", &["ising", "potts"]))
        .axis(Axis::range("temperature", 1.0, 3.0, 0.5))
        .axis(Axis::of("seed", &["1", "2", "3"]))
        .with_stdout(64_000);
    println!(
        "sweep: {} points over {} axes -> submitting through Condor-G",
        sweep.len(),
        3
    );

    let mut tb = build(TestbedConfig {
        seed: 77,
        sites: vec![SiteSpec::pbs("clusterA", 12), SiteSpec::lsf("clusterB", 12)],
        ..TestbedConfig::default()
    });
    let mut console = UserConsole::new(tb.scheduler);
    for point in sweep.points() {
        console = console.submit_after(Duration::ZERO, point);
    }
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    // One site dies for an hour mid-sweep: Condor-G's recovery makes the
    // sweep indifferent (this is the paper's point versus Nimrod-G).
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(20));
    let gk = tb.sites[0].interface;
    println!("[t=20m] clusterA's gatekeeper machine crashes for an hour...");
    tb.world.crash_node_now(gk);
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(80));
    tb.world.restart_node_now(gk);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(8));

    let done = UserConsole::terminal_count(&tb.world, node);
    let m = tb.world.metrics();
    println!("\nsweep points completed: {done}/{}", sweep.len());
    println!(
        "site executions: {} (exactly one per point)",
        m.counter("site.completed")
    );
    println!(
        "JobManager restarts during the outage: {}",
        m.counter("gram.jm_restarts")
    );
    assert_eq!(done, sweep.len() as u64);
    assert_eq!(m.counter("site.completed"), sweep.len() as u64);
    // Show a couple of the generated command lines.
    println!("\nexample points:");
    for i in [0, 7, sweep.len() - 1] {
        let p = sweep.point(i);
        println!("  {} {}", p.name, p.arguments.join(" "));
    }
}
