//! The CMS high-energy-physics pipeline (Experience 2, paper §6): 100
//! simulation jobs generating 500 events each at "Wisconsin", events
//! shipped to the repository, then a reconstruction job at "NCSA" — all
//! driven by a DAG with a disk-buffer throttle.
//!
//! ```text
//! cargo run --release --example cms_pipeline
//! ```

use condor_g_suite::condor_g::DagMan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::cms::{cms_pipeline, CmsParams};
use condor_g_suite::workloads::stats::Table;

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 500,
        sites: vec![
            // The Wisconsin pool runs the simulations...
            SiteSpec::pbs("wisc", 120).with_arch("INTEL"),
            // ...the NCSA cluster runs the reconstruction.
            SiteSpec::pbs("ncsa", 32).with_arch("IA64"),
        ],
        with_mds: true,
        mds_broker: true,
        // A multi-day campaign needs a long-lived proxy (the agent would
        // otherwise hold everything when the default 24h proxy expires —
        // see the credentials experiment for that behaviour).
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });

    let params = CmsParams::default();
    let dag = cms_pipeline(
        &params,
        Some("TARGET.Name == \"wisc\""),
        Some("TARGET.Name == \"ncsa\""),
    );
    println!(
        "pipeline: {} simulation jobs x {} events, then reconstruction ({} nodes, throttle {})",
        params.sim_jobs,
        params.events_per_job,
        dag.nodes.len(),
        params.max_active
    );

    let node = tb.submit;
    let scheduler = tb.scheduler;
    tb.world
        .add_component(node, "dagman", DagMan::new(dag, scheduler));
    tb.world.run_until(SimTime::ZERO + Duration::from_days(3));

    let m = tb.world.metrics();
    let _end = tb.world.now();
    let done: u64 = tb.world.store().get(node, "dag/done_nodes").unwrap_or(0);
    let success: bool = tb.world.store().get(node, "dag/success").unwrap_or(false);
    // Makespan: when the last DAG node finished (busy gauge back to zero).
    let busy = m.series("grid.busy_cpus");
    let makespan = busy
        .map(|s| {
            s.points()
                .iter()
                .rev()
                .find(|&&(_, v)| v > 0.0)
                .map(|&(t, _)| t.as_hours_f64())
                .unwrap_or(0.0)
        })
        .unwrap_or(0.0);
    let cpu_hours: f64 = ["wisc", "ncsa"]
        .iter()
        .filter_map(|s| m.histogram(&format!("site.{s}.cpu_seconds")))
        .map(|h| h.sum() / 3600.0)
        .sum();

    println!(
        "\nresults (cf. paper: 50,000 events, ~1200 CPU-hours, < 1.5 days... at 2.5x the CPUs):"
    );
    let mut t = Table::new(&["metric", "value", "paper"]);
    t.row(&["DAG completed".into(), format!("{success}"), "yes".into()]);
    t.row(&[
        "nodes done".into(),
        format!("{done}"),
        format!("{}", params.sim_jobs + 1),
    ]);
    t.row(&[
        "events produced".into(),
        format!("{}", params.total_events()),
        "50,000".into(),
    ]);
    t.row(&[
        "event data shipped (GB)".into(),
        format!("{:.1}", m.counter("net.bulk_bytes") as f64 / 1e9),
        format!("{:.1}", params.total_bytes() as f64 / 1e9),
    ]);
    t.row(&[
        "CPU-hours".into(),
        format!("{cpu_hours:.0}"),
        "~1200".into(),
    ]);
    t.row(&[
        "makespan (hours)".into(),
        format!("{makespan:.1}"),
        "< 36".into(),
    ]);
    println!("{}", t.render());

    // Ordering guarantee: reconstruction started only after every transfer.
    let wisc_jobs = m
        .histogram("site.wisc.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    let ncsa_jobs = m
        .histogram("site.ncsa.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    println!("site job counts: wisc={wisc_jobs} (simulations), ncsa={ncsa_jobs} (reconstruction)");
}
