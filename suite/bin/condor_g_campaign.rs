//! `condor-g-campaign` — run a deterministic large-scale campaign (or a
//! parallel sweep of campaigns) through the lean testbed and report
//! throughput plus peak memory.
//!
//! ```text
//! cargo run --release --bin condor-g-campaign -- --jobs 100000 --sites 50
//! cargo run --release --bin condor-g-campaign -- --jobs 1000000 --sites 200
//! cargo run --release --bin condor-g-campaign -- --sweep 8 --threads 4 --jobs 5000
//! ```
//!
//! The last stdout line is machine-readable:
//!
//! ```text
//! RESULT jobs=… done=… failed=… sim_secs=… wall_secs=… jobs_per_sec=… peak_rss_kb=… digest=…
//! ```
//!
//! (In sweep mode the totals are the merged farm statistics and
//! `wall_secs` is the whole sweep's wall clock; `speedup=` compares it to
//! the sum of per-cell costs.)

use condor_g_suite::gridsim::fault::FaultPlan;
use condor_g_suite::gridsim::obs::{
    site_aggregates, AnomalyDetector, DetectorConfig, FlightRecorder, TelemetrySample,
    TelemetryWriter,
};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::campaign::{CampaignDriver, CampaignSpec, DriverConfig};
use condor_g_suite::workloads::farm::{run_cells, Cell, CellResult, FarmStats};
use std::time::Instant;

/// Peak resident set (VmHWM) of this process, in KiB.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Flight-recorder / telemetry / fault-injection options (single-campaign
/// mode only; sweep cells fly without instrumentation).
#[derive(Clone)]
struct ObsArgs {
    telemetry_out: Option<String>,
    telemetry_interval: Duration,
    flight: bool,
    flight_ring: usize,
    flight_out: String,
    adaptive: bool,
    dead_site: Option<usize>,
    stuck_horizon: Duration,
    quarantine_storm: u64,
}

impl Default for ObsArgs {
    fn default() -> ObsArgs {
        ObsArgs {
            telemetry_out: None,
            telemetry_interval: Duration::from_mins(10),
            flight: false,
            flight_ring: condor_g_suite::gridsim::obs::flight::DEFAULT_RING,
            flight_out: "campaign.flight".to_string(),
            adaptive: false,
            dead_site: None,
            stuck_horizon: DetectorConfig::default().stuck_horizon,
            quarantine_storm: DetectorConfig::default().quarantine_storm,
        }
    }
}

struct Args {
    spec: CampaignSpec,
    max_inflight: u32,
    sweep: u32,
    threads: usize,
    quiet: bool,
    shards: usize,
    obs: ObsArgs,
}

/// Resolve `--shards 0` to the machine's core count.
fn resolve_shards(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        n
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: condor-g-campaign [--jobs N] [--sites N] [--users N] [--seed N]\n\
         \x20                        [--duration-hours H] [--mean-runtime-secs S]\n\
         \x20                        [--max-inflight N] [--sweep CELLS] [--threads N] [--quiet]\n\
         \x20                        [--shards N]\n\
         \x20                        [--telemetry-out FILE] [--telemetry-interval-mins M]\n\
         \x20                        [--flight] [--flight-ring N] [--flight-out FILE]\n\
         \x20                        [--adaptive] [--dead-site IDX]\n\
         \x20                        [--stuck-horizon-hours H] [--quarantine-storm N]\n\
         --flight keeps a bounded black-box ring of trace records; anomaly detectors\n\
         (stuck job, throughput collapse, quarantine storm, backpressure stall) dump\n\
         its causal window to --flight-out on first trigger (decode with\n\
         `condor-g-trace flight`). --dead-site IDX crashes that site's gatekeeper 30\n\
         minutes in and never restarts it. Flight/telemetry apply to single-campaign\n\
         mode only (ignored under --sweep). --shards N partitions the kernel into N\n\
         shards (0 = one per core); any shard count reproduces the same seeded\n\
         digests — events commit in global (time, seq) order."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: CampaignSpec {
            sites: 50,
            users: 500,
            jobs: 100_000,
            ..CampaignSpec::default()
        },
        max_inflight: 4_096,
        sweep: 0,
        threads: 1,
        quiet: false,
        shards: 1,
        obs: ObsArgs::default(),
    };
    let mut argv = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(argv: &mut impl Iterator<Item = String>) -> T {
        argv.next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| usage())
    }
    fn word(argv: &mut impl Iterator<Item = String>) -> String {
        argv.next().unwrap_or_else(|| usage())
    }
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--jobs" => args.spec.jobs = num(&mut argv),
            "--sites" => args.spec.sites = num(&mut argv),
            "--users" => args.spec.users = num(&mut argv),
            "--seed" => args.spec.seed = num(&mut argv),
            "--duration-hours" => args.spec.duration = Duration::from_hours(num(&mut argv)),
            "--mean-runtime-secs" => args.spec.mean_runtime_secs = num(&mut argv),
            "--max-inflight" => args.max_inflight = num(&mut argv),
            "--sweep" => args.sweep = num(&mut argv),
            "--threads" => args.threads = num(&mut argv),
            "--shards" => args.shards = resolve_shards(num(&mut argv)),
            "--quiet" => args.quiet = true,
            "--telemetry-out" => args.obs.telemetry_out = Some(word(&mut argv)),
            "--telemetry-interval-mins" => {
                args.obs.telemetry_interval = Duration::from_mins(num(&mut argv));
            }
            "--flight" => args.obs.flight = true,
            "--flight-ring" => {
                args.obs.flight = true;
                args.obs.flight_ring = num(&mut argv);
            }
            "--flight-out" => {
                args.obs.flight = true;
                args.obs.flight_out = word(&mut argv);
            }
            "--adaptive" => args.obs.adaptive = true,
            "--dead-site" => args.obs.dead_site = Some(num(&mut argv)),
            "--stuck-horizon-hours" => {
                args.obs.stuck_horizon = Duration::from_hours(num(&mut argv));
            }
            "--quarantine-storm" => args.obs.quarantine_storm = num(&mut argv),
            _ => usage(),
        }
    }
    args
}

/// Snapshot the campaign's vitals into one telemetry heartbeat.
fn sample_campaign(
    tb: &condor_g_suite::harness::Testbed,
    max_inflight: u32,
    recorder: Option<&FlightRecorder>,
) -> TelemetrySample {
    let now = tb.world.now();
    let oldest_wait_secs = CampaignDriver::oldest_inflight_at(&tb.world, tb.submit)
        .map_or(0.0, |t| (now - t).as_secs_f64());
    let (sites, site_submits, site_attempt_failures) = site_aggregates(tb.world.metrics());
    TelemetrySample {
        t_us: now.micros(),
        events: tb.world.events_processed(),
        queue_depth: tb.world.queue_len() as u64,
        done: CampaignDriver::done(&tb.world, tb.submit),
        failed: CampaignDriver::failed(&tb.world, tb.submit),
        dispatched: CampaignDriver::dispatched(&tb.world, tb.submit),
        inflight: CampaignDriver::inflight(&tb.world, tb.submit),
        pending: CampaignDriver::pending(&tb.world, tb.submit),
        window: u64::from(max_inflight),
        oldest_wait_secs,
        sites,
        site_submits,
        site_attempt_failures,
        quarantines: recorder.map_or(0, |r| r.quarantines()),
        ring_len: recorder.map_or(0, |r| r.len() as u64),
        ring_evicted: recorder.map_or(0, |r| r.evicted()),
        shards: tb.world.shard_count() as u64,
        shard_events: tb.world.shard_events(),
    }
}

/// Run one campaign cell to completion; deterministic in `spec` (and, by
/// the sharded kernel's global commit order, independent of `shards`).
/// Returns the cell result plus per-shard committed-event totals.
fn run_campaign(
    spec: &CampaignSpec,
    max_inflight: u32,
    shards: usize,
    label: &str,
    obs: &ObsArgs,
) -> (CellResult, Vec<u64>) {
    let started = Instant::now();
    let sites = spec
        .grid()
        .iter()
        .map(|s| SiteSpec::pbs(&s.name, s.cpus))
        .collect();
    // The campaign outlives the default 24h proxy; credential churn is
    // exercised elsewhere, so mint one that covers the whole horizon.
    let mut tb = build(TestbedConfig {
        seed: spec.seed,
        sites,
        lean: true,
        adaptive: obs.adaptive,
        proxy_lifetime: spec.duration * 20.0 + Duration::from_days(60),
        shards,
        ..TestbedConfig::default()
    });
    // The black box: subscribing it to the trace sink turns tracing on,
    // so every protocol component starts materializing its records — that
    // is the overhead the bench measures, and the ring bounds the memory.
    // With a sharded kernel the recorder keeps one ring per shard and
    // merges on read, so dumps decode unchanged.
    let recorder = if obs.flight {
        let rec = FlightRecorder::with_shards(obs.flight_ring, tb.world.shard_count());
        rec.assign_node_shards(tb.world.node_shards());
        tb.world.trace_mut().subscribe(Box::new(rec.clone()));
        Some(rec)
    } else {
        None
    };
    if let Some(idx) = obs.dead_site {
        // Kill the site's gatekeeper host 30 minutes in and never bring it
        // back: the outage every flight-recorder dump should explain.
        let site = &tb.sites[idx % tb.sites.len()];
        let plan = FaultPlan::new().crash_restart(
            site.interface,
            SimTime::ZERO + Duration::from_mins(30),
            Duration::from_days(3650),
        );
        tb.world.apply_fault_plan(&plan.sorted());
    }
    let driver = CampaignDriver::new(
        tb.scheduler,
        spec,
        DriverConfig {
            max_inflight,
            ..DriverConfig::default()
        },
    );
    tb.world.add_component(tb.submit, "campaign", driver);
    if std::env::var_os("CAMPAIGN_PROFILE").is_some() {
        tb.world.enable_profiler();
    }

    let mut telemetry = obs.telemetry_out.as_deref().and_then(|path| {
        TelemetryWriter::create(path)
            .map_err(|e| eprintln!("condor-g-campaign: {path}: {e}"))
            .ok()
    });
    let mut detector = AnomalyDetector::new(DetectorConfig {
        stuck_horizon: obs.stuck_horizon,
        quarantine_storm: obs.quarantine_storm,
        ..DetectorConfig::default()
    });
    let instrumented = telemetry.is_some() || recorder.is_some();
    let mut dumped = false;

    // Run in chunks until every job reached a terminal state (with a hard
    // horizon so a wedged campaign still terminates and reports). With
    // instrumentation on, the chunk is the heartbeat interval.
    let chunk = if instrumented {
        obs.telemetry_interval.max(Duration::from_mins(1))
    } else {
        Duration::from_hours(6)
    };
    let horizon = SimTime::ZERO + spec.duration * 20.0 + Duration::from_days(30);
    loop {
        let next = tb.world.now() + chunk;
        tb.world.run_until(next);
        let settled = CampaignDriver::done(&tb.world, tb.submit)
            + CampaignDriver::failed(&tb.world, tb.submit);
        if instrumented {
            let sample = sample_campaign(&tb, max_inflight, recorder.as_ref());
            if let Some(w) = telemetry.as_mut() {
                w.emit(&sample);
            }
            let site = recorder.as_ref().and_then(|r| r.last_quarantine_site());
            for anomaly in detector.observe(&sample, site.as_deref()) {
                eprintln!(
                    "anomaly at {}: {} — {}",
                    tb.world.now(),
                    anomaly.kind.name(),
                    anomaly.reason
                );
                if let Some(w) = telemetry.as_mut() {
                    w.anomaly(tb.world.now().micros(), &anomaly);
                }
                // First anomaly wins: one incident, one dump.
                if let (false, Some(rec)) = (dumped, recorder.as_ref()) {
                    let anchor = anomaly.anchor.as_deref().unwrap_or("");
                    let reason = format!("{}: {}", anomaly.kind.name(), anomaly.reason);
                    let bytes = rec.dump(&reason, anchor, tb.world.now());
                    match std::fs::write(&obs.flight_out, &bytes) {
                        Ok(()) => {
                            dumped = true;
                            println!(
                                "flight dump written to {} ({} bytes, anchor {:?})",
                                obs.flight_out,
                                bytes.len(),
                                anchor
                            );
                        }
                        Err(e) => eprintln!("condor-g-campaign: {}: {e}", obs.flight_out),
                    }
                }
            }
        }
        if settled >= spec.jobs || tb.world.now() >= horizon {
            break;
        }
    }
    if let Some(w) = telemetry.as_mut() {
        w.flush();
    }
    if let Some(p) = tb.world.profiler() {
        eprintln!("{}", p.summary());
    }
    if std::env::var_os("CAMPAIGN_DEBUG").is_some() {
        let m = tb.world.metrics();
        let counters = m.counter_names().count();
        let series: usize = m.all_series().map(|(_, s)| s.points().len()).sum();
        let series_n = m.all_series().count();
        let hist: usize = m.histograms().map(|(_, h)| h.samples().len()).sum();
        let hist_n = m.histograms().count();
        eprintln!(
            "debug: store_records={} counters={counters} series={series_n}/{series} hists={hist_n}/{hist} events={} nodes={}",
            tb.world.store().len(),
            tb.world.events_processed(),
            tb.world.node_count(),
        );
        let mut by_prefix: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for n in 0..tb.world.node_count() {
            for key in tb.world.store().keys_with_prefix(NodeId(n as u32), "") {
                let prefix: String = key.chars().take_while(|c| !c.is_ascii_digit()).collect();
                *by_prefix.entry(prefix).or_default() += 1;
            }
        }
        let mut rows: Vec<(usize, String)> = by_prefix.into_iter().map(|(k, v)| (v, k)).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.0));
        for (count, prefix) in rows.iter().take(12) {
            eprintln!("debug:   {count:>8}  {prefix:?}");
        }
    }
    let result = CellResult {
        label: label.to_string(),
        seed: spec.seed,
        jobs_done: CampaignDriver::done(&tb.world, tb.submit),
        jobs_failed: CampaignDriver::failed(&tb.world, tb.submit),
        sim_secs: (tb.world.now() - SimTime::ZERO).as_secs_f64(),
        wall_secs: started.elapsed().as_secs_f64(),
        digest: CampaignDriver::digest(&tb.world, tb.submit),
    };
    (result, tb.world.shard_events())
}

fn main() {
    let args = parse_args();
    let wall = Instant::now();
    if args.sweep > 0 {
        // Sweep mode: independent (scenario, seed) cells across threads.
        let cells: Vec<Cell> = (0..args.sweep)
            .map(|i| Cell {
                label: format!("jobs={};cell={i}", args.spec.jobs),
                seed: args.spec.seed + u64::from(i),
            })
            .collect();
        let spec = args.spec.clone();
        // Cells fly uninstrumented: flight/telemetry flags apply to
        // single-campaign mode only (they would race on the output files).
        let shards = args.shards;
        let results = run_cells(&cells, args.threads, move |cell| {
            let cell_spec = CampaignSpec {
                seed: cell.seed,
                ..spec.clone()
            };
            run_campaign(
                &cell_spec,
                args.max_inflight,
                shards,
                &cell.label,
                &ObsArgs::default(),
            )
            .0
        });
        let stats = FarmStats::of(&results);
        let wall_secs = wall.elapsed().as_secs_f64();
        if !args.quiet {
            for r in &results {
                println!(
                    "cell {} seed={} done={} failed={} wall={:.2}s digest={:016x}",
                    r.label, r.seed, r.jobs_done, r.jobs_failed, r.wall_secs, r.digest
                );
            }
            println!(
                "sweep: {} cells on {} threads, {:.2}s wall ({:.2}s serial-equivalent, {:.2}x speedup)",
                stats.cells,
                args.threads,
                wall_secs,
                stats.cell_wall_secs,
                stats.cell_wall_secs / wall_secs.max(1e-9),
            );
        }
        println!(
            "RESULT jobs={} done={} failed={} sim_secs={:.0} wall_secs={:.3} jobs_per_sec={:.1} peak_rss_kb={} digest={:016x} speedup={:.3} shards={}",
            stats.jobs_done + stats.jobs_failed,
            stats.jobs_done,
            stats.jobs_failed,
            stats.sim_secs,
            wall_secs,
            (stats.jobs_done + stats.jobs_failed) as f64 / wall_secs.max(1e-9),
            peak_rss_kb(),
            stats.digest,
            stats.cell_wall_secs / wall_secs.max(1e-9),
            args.shards,
        );
        return;
    }

    let (r, shard_events) = run_campaign(
        &args.spec,
        args.max_inflight,
        args.shards,
        "campaign",
        &args.obs,
    );
    if !args.quiet {
        println!(
            "campaign: {} jobs over {} sites / {} users (seed {})",
            args.spec.jobs, args.spec.sites, args.spec.users, args.spec.seed
        );
        println!(
            "  done={} failed={} sim={:.1}h wall={:.2}s",
            r.jobs_done,
            r.jobs_failed,
            r.sim_secs / 3600.0,
            r.wall_secs
        );
    }
    let per_shard = shard_events
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join("/");
    println!(
        "RESULT jobs={} done={} failed={} sim_secs={:.0} wall_secs={:.3} jobs_per_sec={:.1} peak_rss_kb={} digest={:016x} shards={} shard_events={}",
        args.spec.jobs,
        r.jobs_done,
        r.jobs_failed,
        r.sim_secs,
        r.wall_secs,
        (r.jobs_done + r.jobs_failed) as f64 / r.wall_secs.max(1e-9),
        peak_rss_kb(),
        r.digest,
        shard_events.len(),
        per_shard,
    );
}
