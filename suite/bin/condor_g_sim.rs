//! `condor-g-sim` — run a Condor-G grid scenario from a description file.
//!
//! ```text
//! cargo run --release --bin condor-g-sim scenarios/demo.scn
//! ```
//!
//! The scenario language (one directive per line, `#` comments):
//!
//! ```text
//! seed 42
//! site pbs  anl-cluster   64          # kinds: pbs lsf loadleveler nqe pool
//! site pool wisc-campus   128
//! mds on                              # build GIIS + per-site GRIS
//! broker mds                          # "static" (default) or "mds"
//! personal-pool on                    # collector/negotiator/schedd/ckpt
//! glideins 16 12h                     # per-site count + lease
//! proxy 48h
//! job grid app.exe 2h x10 stdout=1M   # 10 grid-universe jobs
//! job pool worker.exe 30m x20 io=300s/64K
//! adaptive on                         # weather-driven site quarantine
//! crash site 0 at 1h for 30m          # crash a site's gatekeeper machine
//! partition at 2h for 20m             # submit machine vs everything
//! image 16M                           # staged executable size
//! link wan 2.5M 30ms                  # shared WAN link: capacity, latency
//! route site 0 via wan                # site 0's transfers traverse "wan"
//! linkdown wan at 2h for 10m          # cut the link; aborts in-flight flows
//! linkbw wan 1M at 4h for 1h          # temporary capacity override
//! run 24h
//! ```
//!
//! Declaring any `link` switches inter-node bulk transfers onto the
//! shared-bandwidth flow model: concurrent stage-ins routed over the same
//! link divide its capacity max-min fairly, and `linkdown`/`partition`
//! windows abort transfers in flight (the JobManager retries them with
//! backed-off timers).

use condor_g_suite::condor_g::api::{GridJobSpec, Universe};
use condor_g_suite::gridsim::obs::{
    json_snapshot, prometheus_snapshot, site_aggregates, JsonlWriter, SpanCollector,
    TelemetrySample, TelemetryWriter,
};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{
    build, SiteSpec, Testbed, TestbedConfig, UserConsole, WanLinkSpec, WanTopology,
};
use condor_g_suite::workloads::stats::Table;
use std::fmt;
use std::io::BufWriter;

/// A parsed scenario.
#[derive(Debug, Default)]
pub struct Scenario {
    seed: u64,
    sites: Vec<SiteSpec>,
    mds: bool,
    mds_broker: bool,
    personal_pool: bool,
    adaptive: bool,
    glideins: Option<(u32, Duration)>,
    proxy: Option<Duration>,
    jobs: Vec<GridJobSpec>,
    crashes: Vec<(usize, Duration, Duration)>,
    partition: Option<(Duration, Duration)>,
    image: u64,
    links: Vec<WanLinkSpec>,
    routes: Vec<(usize, Vec<String>)>,
    linkdowns: Vec<(String, Duration, Duration)>,
    linkbws: Vec<(String, u64, Duration, Duration)>,
    run_for: Duration,
}

/// Scenario parse failure with line number.
#[derive(Debug)]
pub struct ScnError(usize, String);

impl fmt::Display for ScnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.0, self.1)
    }
}

/// Parse `100ms` / `90s` / `30m` / `2h` / `1d` into a duration.
fn parse_duration(s: &str) -> Option<Duration> {
    if let Some(num) = s.strip_suffix("ms") {
        return num.parse().ok().map(Duration::from_millis);
    }
    let (num, unit) = s.split_at(s.len().checked_sub(1)?);
    let n: u64 = num.parse().ok()?;
    Some(match unit {
        "s" => Duration::from_secs(n),
        "m" => Duration::from_mins(n),
        "h" => Duration::from_hours(n),
        "d" => Duration::from_days(n),
        _ => return None,
    })
}

/// Parse `64K` / `1M` / `2.5M` / `2G` / plain bytes.
fn parse_size(s: &str) -> Option<u64> {
    if let Ok(n) = s.parse() {
        return Some(n);
    }
    let (num, unit) = s.split_at(s.len().checked_sub(1)?);
    let mult = match unit {
        "K" => 1e3,
        "M" => 1e6,
        "G" => 1e9,
        _ => return None,
    };
    let n: f64 = num.parse().ok()?;
    if !n.is_finite() || n < 0.0 {
        return None;
    }
    Some((n * mult) as u64)
}

/// Parse a scenario file's text.
pub fn parse_scenario(text: &str) -> Result<Scenario, ScnError> {
    let mut scn = Scenario {
        seed: 42,
        run_for: Duration::from_days(1),
        ..Default::default()
    };
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let err = |m: String| ScnError(lineno, m);
        match words[0] {
            "seed" => {
                scn.seed = words
                    .get(1)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("seed needs a number".into()))?;
            }
            "site" => {
                let [_, kind, name, cpus] = words[..] else {
                    return Err(err("site <kind> <name> <cpus>".into()));
                };
                let cpus: u32 = cpus.parse().map_err(|_| err("bad cpu count".into()))?;
                let spec = match kind {
                    "pbs" => SiteSpec::pbs(name, cpus),
                    "lsf" => SiteSpec::lsf(name, cpus),
                    "loadleveler" => SiteSpec::loadleveler(name, cpus),
                    "nqe" => SiteSpec::nqe(name, cpus),
                    "pool" => SiteSpec::condor_pool(name, cpus),
                    other => return Err(err(format!("unknown site kind {other}"))),
                };
                scn.sites.push(spec);
            }
            "mds" => scn.mds = words.get(1) == Some(&"on"),
            "broker" => scn.mds_broker = words.get(1) == Some(&"mds"),
            "personal-pool" => scn.personal_pool = words.get(1) == Some(&"on"),
            "adaptive" => scn.adaptive = words.get(1) == Some(&"on"),
            "glideins" => {
                let n: u32 = words
                    .get(1)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("glideins <n> <lease>".into()))?;
                let lease = words
                    .get(2)
                    .and_then(|w| parse_duration(w))
                    .ok_or_else(|| err("bad lease".into()))?;
                scn.glideins = Some((n, lease));
            }
            "proxy" => {
                scn.proxy = Some(
                    words
                        .get(1)
                        .and_then(|w| parse_duration(w))
                        .ok_or_else(|| err("bad proxy lifetime".into()))?,
                );
            }
            "job" => {
                // job <grid|pool> <exe> <runtime> [xN] [stdout=SZ] [io=T/SZ] [arch=A]
                let universe = match words.get(1) {
                    Some(&"grid") => Universe::Grid,
                    Some(&"pool") => Universe::Pool,
                    _ => return Err(err("job <grid|pool> ...".into())),
                };
                let exe = words
                    .get(2)
                    .ok_or_else(|| err("job needs an executable".into()))?;
                let runtime = words
                    .get(3)
                    .and_then(|w| parse_duration(w))
                    .ok_or_else(|| err("bad runtime".into()))?;
                let mut count = 1usize;
                let mut spec = match universe {
                    Universe::Grid => GridJobSpec::grid(exe, &format!("/home/jane/{exe}"), runtime),
                    Universe::Pool => GridJobSpec::pool(exe, &format!("/home/jane/{exe}"), runtime),
                };
                for opt in &words[4..] {
                    if let Some(n) = opt.strip_prefix('x') {
                        count = n.parse().map_err(|_| err("bad xN".into()))?;
                    } else if let Some(v) = opt.strip_prefix("stdout=") {
                        spec.stdout_size =
                            parse_size(v).ok_or_else(|| err("bad stdout size".into()))?;
                    } else if let Some(v) = opt.strip_prefix("io=") {
                        let (t, sz) = v
                            .split_once('/')
                            .ok_or_else(|| err("io=<interval>/<bytes>".into()))?;
                        let t = parse_duration(t).ok_or_else(|| err("bad io interval".into()))?;
                        let sz = parse_size(sz).ok_or_else(|| err("bad io size".into()))?;
                        spec = spec.with_remote_io(t.as_secs_f64(), sz);
                    } else if let Some(a) = opt.strip_prefix("arch=") {
                        spec = spec.with_arch(a);
                    } else {
                        return Err(err(format!("unknown job option {opt}")));
                    }
                }
                for _ in 0..count {
                    scn.jobs.push(spec.clone());
                }
            }
            "crash" => {
                // crash site <idx> at <t> for <d>
                let [_, "site", idx, "at", t, "for", d] = words[..] else {
                    return Err(err("crash site <idx> at <t> for <d>".into()));
                };
                let idx: usize = idx.parse().map_err(|_| err("bad site index".into()))?;
                let at = parse_duration(t).ok_or_else(|| err("bad time".into()))?;
                let dur = parse_duration(d).ok_or_else(|| err("bad duration".into()))?;
                scn.crashes.push((idx, at, dur));
            }
            "partition" => {
                let [_, "at", t, "for", d] = words[..] else {
                    return Err(err("partition at <t> for <d>".into()));
                };
                let at = parse_duration(t).ok_or_else(|| err("bad time".into()))?;
                let dur = parse_duration(d).ok_or_else(|| err("bad duration".into()))?;
                scn.partition = Some((at, dur));
            }
            "image" => {
                scn.image = words
                    .get(1)
                    .and_then(|w| parse_size(w))
                    .ok_or_else(|| err("image <size>".into()))?;
            }
            "link" => {
                // link <name> <bytes/sec> [<latency>]
                let name = *words
                    .get(1)
                    .ok_or_else(|| err("link <name> <bytes/sec> [<latency>]".into()))?;
                let capacity = words
                    .get(2)
                    .and_then(|w| parse_size(w))
                    .ok_or_else(|| err("bad link capacity".into()))?;
                let latency = match words.get(3) {
                    Some(w) => parse_duration(w).ok_or_else(|| err("bad link latency".into()))?,
                    None => Duration::ZERO,
                };
                scn.links.push(WanLinkSpec {
                    name: name.to_string(),
                    capacity: capacity as f64,
                    latency: latency.as_secs_f64(),
                });
            }
            "route" => {
                // route site <idx> via <link> [<link>...]
                if words.get(1) != Some(&"site") || words.get(3) != Some(&"via") || words.len() < 5
                {
                    return Err(err("route site <idx> via <link>...".into()));
                }
                let idx: usize = words[2].parse().map_err(|_| err("bad site index".into()))?;
                scn.routes
                    .push((idx, words[4..].iter().map(|w| w.to_string()).collect()));
            }
            "linkdown" => {
                let [_, name, "at", t, "for", d] = words[..] else {
                    return Err(err("linkdown <name> at <t> for <d>".into()));
                };
                let at = parse_duration(t).ok_or_else(|| err("bad time".into()))?;
                let dur = parse_duration(d).ok_or_else(|| err("bad duration".into()))?;
                scn.linkdowns.push((name.to_string(), at, dur));
            }
            "linkbw" => {
                let [_, name, cap, "at", t, "for", d] = words[..] else {
                    return Err(err("linkbw <name> <bytes/sec> at <t> for <d>".into()));
                };
                let cap = parse_size(cap).ok_or_else(|| err("bad link capacity".into()))?;
                let at = parse_duration(t).ok_or_else(|| err("bad time".into()))?;
                let dur = parse_duration(d).ok_or_else(|| err("bad duration".into()))?;
                scn.linkbws.push((name.to_string(), cap, at, dur));
            }
            "run" => {
                scn.run_for = words
                    .get(1)
                    .and_then(|w| parse_duration(w))
                    .ok_or_else(|| err("bad run duration".into()))?;
            }
            other => return Err(err(format!("unknown directive {other}"))),
        }
    }
    if scn.sites.is_empty() {
        return Err(ScnError(0, "scenario declares no sites".into()));
    }
    // Cross-references: routes and link fault windows must name declared
    // links, routes must name declared sites.
    let declared: std::collections::HashSet<&str> =
        scn.links.iter().map(|l| l.name.as_str()).collect();
    for (idx, names) in &scn.routes {
        if *idx >= scn.sites.len() {
            return Err(ScnError(0, format!("route site {idx} out of range")));
        }
        for n in names {
            if !declared.contains(n.as_str()) {
                return Err(ScnError(0, format!("route references undeclared link {n}")));
            }
        }
    }
    for name in scn
        .linkdowns
        .iter()
        .map(|(n, ..)| n)
        .chain(scn.linkbws.iter().map(|(n, ..)| n))
    {
        if !declared.contains(name.as_str()) {
            return Err(ScnError(
                0,
                format!("fault window references undeclared link {name}"),
            ));
        }
    }
    Ok(scn)
}

/// Observability switches parsed from the command line.
#[derive(Debug, Default)]
pub struct ObsOptions {
    /// Stream the full trace as JSON Lines to this path.
    trace_out: Option<String>,
    /// Write a metrics snapshot here at end of run (`.json` selects the
    /// JSON format, anything else Prometheus text).
    metrics_out: Option<String>,
    /// Convert the run's trace to a Perfetto TrackEvent protobuf here
    /// (open at ui.perfetto.dev).
    perfetto_out: Option<String>,
    /// Write the final per-site weather snapshot as JSON here.
    weather_out: Option<String>,
    /// Stream JSONL telemetry heartbeats here, one line per sim-time
    /// interval (see `--telemetry-interval`).
    telemetry_out: Option<String>,
    /// Heartbeat interval (default 10 minutes of sim time).
    telemetry_interval: Option<Duration>,
    /// Enable the kernel profiler and print its summary.
    profile: bool,
    /// Kernel shard count (0 = one per core). Any value reproduces the
    /// same seeded trace: events commit in global `(time, seq)` order.
    shards: usize,
}

/// Build and run a parsed scenario; prints the report.
pub fn run_scenario(scn: Scenario, obs: ObsOptions) {
    let mut tb: Testbed = build(TestbedConfig {
        seed: scn.seed,
        sites: scn.sites.clone(),
        shards: obs.shards.max(1),
        with_mds: scn.mds,
        mds_broker: scn.mds_broker,
        with_personal_pool: scn.personal_pool,
        adaptive: scn.adaptive,
        proxy_lifetime: scn.proxy.unwrap_or(Duration::from_hours(24)),
        exe_size: scn.image,
        wan: if scn.links.is_empty() {
            None
        } else {
            Some(WanTopology {
                links: scn.links.clone(),
                site_routes: scn.routes.clone(),
            })
        },
        // The span reconstructor and JSONL exporter both read the trace
        // stream, so scenario runs always collect it.
        trace: true,
        ..TestbedConfig::default()
    });
    if let Some(path) = &obs.trace_out {
        match std::fs::File::create(path) {
            Ok(f) => tb
                .world
                .trace_mut()
                .subscribe(Box::new(JsonlWriter::new(BufWriter::new(f)))),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if obs.profile {
        tb.world.enable_profiler();
    }
    // Stage every referenced executable on the submit-side GASS server is
    // handled by the harness preloads; unknown paths still stage as the
    // default app image.
    if let Some((n, lease)) = scn.glideins {
        if scn.personal_pool {
            tb.add_glidein_factory(n, lease);
        } else {
            eprintln!("warning: glideins need `personal-pool on`; ignoring");
        }
    }
    let total_jobs = scn.jobs.len();
    let mut console = UserConsole::new(tb.scheduler);
    for mut job in scn.jobs {
        // Scenario executables resolve against the preloaded app image so
        // staging always succeeds.
        job.executable = "/home/jane/app.exe".into();
        console = console.submit_after(Duration::ZERO, job);
    }
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    // Fault schedule.
    let mut plan = gridsim::fault::FaultPlan::new();
    for (idx, at, dur) in &scn.crashes {
        let site = &tb.sites[*idx];
        plan = plan.crash_restart(site.interface, SimTime::ZERO + *at, *dur);
    }
    if let Some((at, dur)) = scn.partition {
        let others: Vec<NodeId> = tb
            .sites
            .iter()
            .flat_map(|s| [s.interface, s.cluster])
            .collect();
        plan = plan.partition_window(vec![tb.submit], others, SimTime::ZERO + at, dur);
    }
    for (name, at, dur) in &scn.linkdowns {
        plan = plan.link_down_window(name, SimTime::ZERO + *at, *dur);
    }
    for (name, cap, at, dur) in &scn.linkbws {
        plan = plan.link_bandwidth_window(name, *cap as f64, SimTime::ZERO + *at, *dur);
    }
    let plan = plan.sorted();
    tb.world.apply_fault_plan(&plan);

    println!(
        "running: {} sites, {total_jobs} jobs, {} fault actions, horizon {}",
        tb.sites.len(),
        plan.len(),
        scn.run_for
    );
    let end = SimTime::ZERO + scn.run_for;
    if let Some(path) = &obs.telemetry_out {
        // Heartbeat mode: run in interval-sized chunks, snapshotting the
        // run's vitals after each (scenario runs have no campaign driver,
        // so the backpressure fields derive from the job counters).
        let mut w = match TelemetryWriter::create(path) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            }
        };
        let interval = obs
            .telemetry_interval
            .unwrap_or(Duration::from_mins(10))
            .max(Duration::from_secs(1));
        while tb.world.now() < end {
            let next = (tb.world.now() + interval).min(end);
            tb.world.run_until(next);
            let m = tb.world.metrics();
            let (done, failed, submitted) = (
                m.counter("condor_g.jobs_done"),
                m.counter("condor_g.jobs_failed"),
                m.counter("condor_g.submitted"),
            );
            let (sites, site_submits, site_attempt_failures) = site_aggregates(m);
            w.emit(&TelemetrySample {
                t_us: tb.world.now().micros(),
                events: tb.world.events_processed(),
                queue_depth: tb.world.queue_len() as u64,
                done,
                failed,
                dispatched: submitted,
                inflight: submitted.saturating_sub(done + failed),
                sites,
                site_submits,
                site_attempt_failures,
                shards: tb.world.shard_count() as u64,
                shard_events: tb.world.shard_events(),
                ..TelemetrySample::default()
            });
        }
        w.flush();
        println!(
            "telemetry heartbeats written to {path} ({} lines)",
            w.lines()
        );
    } else {
        tb.world.run_until(end);
    }

    let m = tb.world.metrics();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&[
        "jobs submitted".into(),
        format!("{}", m.counter("condor_g.submitted")),
    ]);
    t.row(&[
        "jobs done".into(),
        format!("{}", m.counter("condor_g.jobs_done")),
    ]);
    t.row(&[
        "jobs failed".into(),
        format!("{}", m.counter("condor_g.jobs_failed")),
    ]);
    t.row(&[
        "site executions".into(),
        format!(
            "{}",
            m.counter("site.completed") + m.counter("condor.jobs_finished")
        ),
    ]);
    t.row(&[
        "GRAM submits".into(),
        format!("{}", m.counter("gram.submits")),
    ]);
    t.row(&[
        "JobManager restarts".into(),
        format!("{}", m.counter("gram.jm_restarts")),
    ]);
    t.row(&[
        "glideins started".into(),
        format!("{}", m.counter("glidein.started")),
    ]);
    t.row(&[
        "preemptions".into(),
        format!(
            "{}",
            m.counter("condor.vacated") + m.counter("site.vacated")
        ),
    ]);
    t.row(&[
        "checkpoints".into(),
        format!("{}", m.counter("condor.checkpoints")),
    ]);
    t.row(&[
        "WAN bulk GB".into(),
        format!("{:.2}", m.counter("net.bulk_bytes") as f64 / 1e9),
    ]);
    if !scn.links.is_empty() {
        t.row(&[
            "contended flows".into(),
            format!("{}", m.counter("net.flows_started")),
        ]);
        t.row(&[
            "flows aborted".into(),
            format!("{}", m.counter("net.flows_aborted")),
        ]);
        t.row(&[
            "link rescales".into(),
            format!("{}", m.counter("net.link_rescales")),
        ]);
    }
    t.row(&[
        "events simulated".into(),
        format!("{}", tb.world.events_processed()),
    ]);
    t.row(&[
        "kernel shards".into(),
        format!("{}", tb.world.shard_count()),
    ]);
    t.row(&[
        "per-shard events".into(),
        tb.world
            .shard_events()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/"),
    ]);
    println!("\n{}", t.render());
    println!("per-job outcomes:");
    for i in 0..total_jobs as u64 {
        let h = UserConsole::history_of(&tb.world, node, i);
        println!("  job {i}: {}", h.join(" -> "));
    }

    // Observability epilogue: flush exporters, reconstruct job spans, report
    // per-phase durations into the metrics sink, then snapshot it.
    tb.world.trace_mut().flush();
    let spans = SpanCollector::from_events(tb.world.trace().events());
    spans.report_metrics(tb.world.metrics_mut());
    println!(
        "\njob spans: {} jobs, {} unattributed span events",
        spans.jobs().len(),
        spans.orphans
    );
    let summary = spans.phase_summary();
    if !summary.is_empty() {
        let mut pt = Table::new(&["phase", "intervals", "mean"]);
        for (phase, n, mean_secs) in summary {
            pt.row(&[phase.into(), format!("{n}"), format!("{mean_secs:.1}s")]);
        }
        println!("{}", pt.render());
    }
    // Per-site grid weather: the MDS-style health summary aggregated from
    // the site.<name>.* metrics the protocol components publish. Capped at
    // the busiest sites so a hundreds-of-sites campaign stays readable;
    // --weather-out still carries every row.
    const WEATHER_TOP: usize = 20;
    let weather = condor_g_suite::gridsim::obs::grid_weather(tb.world.metrics());
    if !weather.is_empty() {
        println!(
            "\ngrid weather:\n{}",
            condor_g_suite::gridsim::obs::render_top(&weather, WEATHER_TOP)
        );
    }
    if let Some(path) = &obs.weather_out {
        let json = condor_g_suite::gridsim::obs::weather_json(&weather);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("weather snapshot written to {path}");
    }
    if let Some(path) = &obs.perfetto_out {
        // The in-memory trace holds the same records the JSONL exporter
        // streams; mirror them into the offline form and encode.
        let records: Vec<condor_g_trace::Record> = tb
            .world
            .trace()
            .events()
            .iter()
            .map(|e| condor_g_trace::Record {
                time: e.time,
                node: u64::from(e.addr.node.0),
                comp: u64::from(e.addr.comp.0),
                kind: e.kind.to_string(),
                detail: e.detail.clone(),
                id: e.id,
                cause: e.cause,
            })
            .collect();
        let (bytes, summary) = condor_g_trace::perfetto::encode(&records);
        if let Err(e) = condor_g_trace::perfetto::verify(&records, &bytes, &summary) {
            eprintln!("perfetto self-verification failed: {e}");
            std::process::exit(2);
        }
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "perfetto trace written to {path}: {} packets | tracks: {} jobs, {} sites, \
             {} components | {} flow edges, {} critical-path events",
            summary.packets,
            summary.job_tracks,
            summary.site_tracks,
            summary.component_tracks,
            summary.flow_edges,
            summary.critical_instants,
        );
    }
    if let Some(path) = &obs.metrics_out {
        let now = tb.world.now();
        let snapshot = if path.ends_with(".json") {
            json_snapshot(tb.world.metrics(), now)
        } else {
            prometheus_snapshot(tb.world.metrics(), now)
        };
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("metrics snapshot written to {path}");
    }
    if let Some(p) = tb.world.profiler() {
        println!("\n{}", p.summary());
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: condor-g-sim [--trace-out <file.jsonl>] [--metrics-out <file.prom|file.json>] \
         [--perfetto-out <file.pb>] [--weather-out <file.json>] \
         [--telemetry-out <file.jsonl>] [--telemetry-interval <dur>] [--profile] \
         [--shards N] <scenario-file>\n\
         --shards N partitions the kernel into N shards (0 = one per core); any\n\
         shard count reproduces the same seeded trace byte-for-byte."
    );
    std::process::exit(2);
}

fn main() {
    let mut obs = ObsOptions::default();
    let mut path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trace-out" => obs.trace_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--metrics-out" => obs.metrics_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--perfetto-out" => obs.perfetto_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--weather-out" => obs.weather_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--telemetry-out" => obs.telemetry_out = Some(argv.next().unwrap_or_else(|| usage())),
            "--telemetry-interval" => {
                obs.telemetry_interval = Some(
                    argv.next()
                        .and_then(|w| parse_duration(&w))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--profile" => obs.profile = true,
            "--shards" => {
                let n: usize = argv
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage());
                obs.shards = if n == 0 {
                    std::thread::available_parallelism().map_or(1, usize::from)
                } else {
                    n
                };
            }
            _ if arg.starts_with("--") => usage(),
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    match parse_scenario(&text) {
        Ok(scn) => run_scenario(scn, obs),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_and_sizes() {
        assert_eq!(parse_duration("100ms"), Some(Duration::from_millis(100)));
        assert_eq!(parse_duration("90s"), Some(Duration::from_secs(90)));
        assert_eq!(parse_duration("30m"), Some(Duration::from_mins(30)));
        assert_eq!(parse_duration("2h"), Some(Duration::from_hours(2)));
        assert_eq!(parse_duration("1d"), Some(Duration::from_days(1)));
        assert_eq!(parse_duration("xx"), None);
        assert_eq!(parse_size("64K"), Some(64_000));
        assert_eq!(parse_size("1M"), Some(1_000_000));
        assert_eq!(parse_size("2.5M"), Some(2_500_000));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("xM"), None);
    }

    #[test]
    fn full_scenario_parses() {
        let scn = parse_scenario(
            "# demo\n\
             seed 7\n\
             site pbs anl 64\n\
             site pool wisc 128\n\
             mds on\n\
             broker mds\n\
             personal-pool on\n\
             glideins 16 12h\n\
             proxy 48h\n\
             adaptive on\n\
             job grid app.exe 2h x10 stdout=1M\n\
             job pool worker.exe 30m x20 io=300s/64K\n\
             crash site 0 at 1h for 30m\n\
             partition at 2h for 20m\n\
             run 24h\n",
        )
        .unwrap();
        assert_eq!(scn.seed, 7);
        assert_eq!(scn.sites.len(), 2);
        assert!(scn.mds && scn.mds_broker && scn.personal_pool && scn.adaptive);
        assert_eq!(scn.glideins, Some((16, Duration::from_hours(12))));
        assert_eq!(scn.jobs.len(), 30);
        assert_eq!(scn.jobs[0].stdout_size, 1_000_000);
        assert_eq!(scn.jobs[10].io_bytes, 64_000);
        assert_eq!(
            scn.crashes,
            vec![(0, Duration::from_hours(1), Duration::from_mins(30))]
        );
        assert_eq!(scn.run_for, Duration::from_hours(24));
    }

    #[test]
    fn wan_directives_parse() {
        let scn = parse_scenario(
            "seed 13\n\
             site pbs east 16\n\
             site lsf west 16\n\
             image 16M\n\
             link wan 2.5M 30ms\n\
             route site 0 via wan\n\
             route site 1 via wan\n\
             job grid app.exe 20m x4 stdout=1M\n\
             linkdown wan at 2h for 10m\n\
             linkbw wan 1M at 20m for 20m\n\
             run 12h\n",
        )
        .unwrap();
        assert_eq!(scn.image, 16_000_000);
        assert_eq!(scn.links.len(), 1);
        assert_eq!(scn.links[0].name, "wan");
        assert_eq!(scn.links[0].capacity, 2_500_000.0);
        assert!((scn.links[0].latency - 0.030).abs() < 1e-12);
        assert_eq!(
            scn.routes,
            vec![(0, vec!["wan".to_string()]), (1, vec!["wan".to_string()])]
        );
        assert_eq!(
            scn.linkdowns,
            vec![(
                "wan".to_string(),
                Duration::from_hours(2),
                Duration::from_mins(10)
            )]
        );
        assert_eq!(
            scn.linkbws,
            vec![(
                "wan".to_string(),
                1_000_000,
                Duration::from_mins(20),
                Duration::from_mins(20)
            )]
        );
    }

    #[test]
    fn wan_cross_references_are_checked() {
        assert!(
            parse_scenario("site pbs a 4\nroute site 0 via wan\n").is_err(),
            "undeclared link in route"
        );
        assert!(
            parse_scenario("site pbs a 4\nlink wan 1M\nroute site 5 via wan\n").is_err(),
            "site index out of range"
        );
        assert!(
            parse_scenario("site pbs a 4\nlinkdown wan at 1h for 5m\n").is_err(),
            "undeclared link in fault window"
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scenario("seed 1\nfrobnicate\n").unwrap_err();
        assert_eq!(e.0, 2);
        let e = parse_scenario("site pbs x notanumber\n").unwrap_err();
        assert_eq!(e.0, 1);
        assert!(parse_scenario("seed 1\n").is_err(), "no sites");
    }
}
