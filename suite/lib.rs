#![warn(missing_docs)]
//! Umbrella crate for the Condor-G reproduction suite.
//!
//! Re-exports every workspace crate and provides [`harness`], the shared
//! testbed builder used by the integration tests, the runnable examples,
//! and the experiment binaries: it assembles a complete simulated grid —
//! CA, user, submit machine (Scheduler + GASS + mailer + optional personal
//! pool), execution sites (gatekeeper + batch scheduler + GRIS), MDS index,
//! MyProxy — from a declarative description.

pub use classads;
pub use condor;
pub use condor_g;
pub use gass;
pub use gram;
pub use gridsim;
pub use gsi;
pub use mds;
pub use site;
pub use workloads;

pub mod harness;
