//! The shared testbed: builds complete simulated grids.

use classads::ClassAd;
use condor::{Collector, Negotiator, Schedd};
use condor_g::api::{GridJobId, GridJobSpec, JobStatus};
use condor_g::glidein::GlideinSite;
use condor_g::gridmanager::GmConfig;
use condor_g::scheduler::SchedulerConfig;
use condor_g::{
    AdaptiveBroker, Broker, GatekeeperInfo, GlideinFactory, Mailer, MdsBroker, Scheduler,
    StaticListBroker, UserCmd, UserEvent,
};
use gass::GassServer;
use gram::Gatekeeper;
use gridsim::obs::{HealthPolicy, SiteHealthTracker};
use gridsim::prelude::*;
use gridsim::rng::Dist;
use gridsim::world::BootCtx;
use gridsim::AnyMsg;
use gsi::{CertificateAuthority, GridMap, Identity, MyProxyServer, ProxyCredential};
use mds::{addr_to_attr, Giis, Gris};
use site::lrm::ChurnModel;
use site::policy::{EasyBackfill, FairShare, Fifo, SchedPolicy};
use site::Lrm;
use std::collections::BTreeMap;

/// Which batch system a site runs (paper: "PBS, Condor, LSF, LoadLeveler,
/// NQE, etc.").
#[derive(Clone, Debug, PartialEq)]
pub enum SiteKind {
    /// PBS-like: EASY backfill.
    Pbs,
    /// LSF-like: fair share.
    Lsf,
    /// LoadLeveler-like: backfill (IBM's scheduler behaved like EASY for
    /// our purposes).
    LoadLeveler,
    /// NQE-like: strict FIFO.
    Nqe,
    /// A Condor pool shared with desktop owners: FIFO + churn.
    CondorPool {
        /// Mean seconds between owner-activity changes.
        churn_mean_secs: f64,
        /// Mean processors owner-occupied at any time.
        reclaimed_mean: f64,
    },
}

/// Description of one execution site.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// Site name.
    pub name: String,
    /// Processors.
    pub cpus: u32,
    /// Scheduler flavour.
    pub kind: SiteKind,
    /// Site wall-clock limit for jobs.
    pub wall_limit: Option<Duration>,
    /// Machine architecture advertised via MDS/glideins.
    pub arch: String,
}

impl SiteSpec {
    /// A PBS-like site.
    pub fn pbs(name: &str, cpus: u32) -> SiteSpec {
        SiteSpec {
            name: name.to_string(),
            cpus,
            kind: SiteKind::Pbs,
            wall_limit: None,
            arch: "INTEL".into(),
        }
    }

    /// An LSF-like site.
    pub fn lsf(name: &str, cpus: u32) -> SiteSpec {
        SiteSpec {
            kind: SiteKind::Lsf,
            ..SiteSpec::pbs(name, cpus)
        }
    }

    /// A LoadLeveler-like site.
    pub fn loadleveler(name: &str, cpus: u32) -> SiteSpec {
        SiteSpec {
            kind: SiteKind::LoadLeveler,
            ..SiteSpec::pbs(name, cpus)
        }
    }

    /// An NQE-like site (strict FIFO).
    pub fn nqe(name: &str, cpus: u32) -> SiteSpec {
        SiteSpec {
            kind: SiteKind::Nqe,
            ..SiteSpec::pbs(name, cpus)
        }
    }

    /// A Condor-pool site with owner churn.
    pub fn condor_pool(name: &str, cpus: u32) -> SiteSpec {
        SiteSpec {
            kind: SiteKind::CondorPool {
                churn_mean_secs: 3600.0,
                reclaimed_mean: cpus as f64 * 0.55,
            },
            ..SiteSpec::pbs(name, cpus)
        }
    }

    /// Builder: wall limit.
    pub fn with_wall_limit(mut self, limit: Duration) -> SiteSpec {
        self.wall_limit = Some(limit);
        self
    }

    /// Builder: architecture.
    pub fn with_arch(mut self, arch: &str) -> SiteSpec {
        self.arch = arch.to_string();
        self
    }
}

/// The ten-site resource mix of the paper's Experience 1: "eight Condor
/// pools, one Cluster managed by PBS, and one supercomputer managed by
/// LSF", more than 2,500 CPUs in total.
pub fn paper_sites() -> Vec<SiteSpec> {
    vec![
        SiteSpec::condor_pool("wisc-pool", 700),
        SiteSpec::condor_pool("gatech-pool", 400),
        SiteSpec::condor_pool("ucsd-pool", 300),
        SiteSpec::condor_pool("iowa-pool", 250),
        SiteSpec::condor_pool("nwu-pool", 200),
        SiteSpec::condor_pool("unm-pool", 150),
        SiteSpec::condor_pool("columbia-pool", 120),
        SiteSpec::condor_pool("infn-pool", 100),
        SiteSpec::pbs("anl-pbs", 256),
        SiteSpec::lsf("nrl-lsf", 128),
    ]
}

/// Handles to one built site.
#[derive(Clone, Debug)]
pub struct SiteHandles {
    /// The spec it was built from.
    pub name: String,
    /// Interface (gatekeeper) node.
    pub interface: NodeId,
    /// Cluster node (LRM + where glideins materialize).
    pub cluster: NodeId,
    /// The gatekeeper component.
    pub gatekeeper: Addr,
    /// The batch scheduler component.
    pub lrm: Addr,
    /// Architecture.
    pub arch: String,
}

/// One shared WAN link in a [`WanTopology`].
#[derive(Clone, Debug, PartialEq)]
pub struct WanLinkSpec {
    /// Link name (referenced by routes and fault windows).
    pub name: String,
    /// Capacity in bytes/sec, shared max-min fairly by concurrent flows.
    pub capacity: f64,
    /// One-way propagation latency in seconds.
    pub latency: f64,
}

/// A shared-bandwidth WAN between the submit machine and the sites.
///
/// Declaring any link switches inter-node bulk transfers onto the
/// fair-share flow model (`gridsim::network::flow`): concurrent stage-ins
/// crossing the same link slow each other down, and link failures abort
/// in-flight transfers. Sites without a route keep dedicated (legacy)
/// bandwidth.
#[derive(Clone, Debug, Default)]
pub struct WanTopology {
    /// The shared links.
    pub links: Vec<WanLinkSpec>,
    /// `(site index, link names)`: transfers between the submit machine
    /// and that site's gatekeeper/cluster nodes traverse the named links.
    pub site_routes: Vec<(usize, Vec<String>)>,
}

/// Options for building the testbed.
pub struct TestbedConfig {
    /// RNG seed.
    pub seed: u64,
    /// Collect traces.
    pub trace: bool,
    /// Sites to build.
    pub sites: Vec<SiteSpec>,
    /// Build an MDS index + per-site GRIS.
    pub with_mds: bool,
    /// Build a personal Condor pool (collector/negotiator/schedd) on the
    /// submit machine.
    pub with_personal_pool: bool,
    /// Build a MyProxy server node.
    pub with_myproxy: bool,
    /// Proxy lifetime at t=0.
    pub proxy_lifetime: Duration,
    /// GridManager tuning overrides.
    pub gm: GmConfig,
    /// Use the MDS matchmaking broker instead of the static list.
    pub mds_broker: bool,
    /// Weather-driven adaptive brokering: wrap the broker in an
    /// [`AdaptiveBroker`], feed it grid weather each GridManager tick, and
    /// (with a personal pool) run the negotiator with weather annotation.
    pub adaptive: bool,
    /// Stop the whole simulation at this virtual time (safety net).
    pub max_time: Option<Duration>,
    /// Campaign (lean) mode: every layer reclaims per-job state as jobs
    /// finish — the scheduler retires terminal records to a compact
    /// completed log, the GridManager deletes job tombstones, gatekeepers
    /// reap dedup/log entries when JobManagers exit, and the kernel
    /// recycles component ids. Memory then tracks *in-flight* jobs, so
    /// million-job campaigns run in flat RSS. Off by default (trace output
    /// is not byte-identical to non-lean runs: component ids differ).
    pub lean: bool,
    /// Shared-bandwidth WAN topology (flow mode). `None` keeps the legacy
    /// uncontended network model.
    pub wan: Option<WanTopology>,
    /// Size in bytes of the staged executable images (`app.exe` and
    /// `worker.exe`) preloaded on the submit GASS server. `0` keeps the
    /// legacy tiny inline images.
    pub exe_size: u64,
    /// Kernel shard count. Shard 0 is the *home* shard (submit machine,
    /// GIIS, MyProxy); each site's node pair (`gk.*` + `cluster.*`) is
    /// assigned as a group, round-robin over shards `1..N`. With 1 shard
    /// everything lands on shard 0 — the classic layout. Any shard count
    /// produces the same seeded results (events commit in global
    /// `(time, seq)` order); see `gridsim::shard`.
    pub shards: usize,
}

impl Default for TestbedConfig {
    fn default() -> TestbedConfig {
        TestbedConfig {
            seed: 42,
            trace: false,
            sites: vec![SiteSpec::pbs("siteA", 8), SiteSpec::pbs("siteB", 8)],
            with_mds: false,
            with_personal_pool: false,
            with_myproxy: false,
            proxy_lifetime: Duration::from_hours(24),
            gm: GmConfig::default(),
            mds_broker: false,
            adaptive: false,
            max_time: None,
            lean: false,
            wan: None,
            exe_size: 0,
            shards: 1,
        }
    }
}

/// A fully built grid plus the handles experiments need.
pub struct Testbed {
    /// The world; run it.
    pub world: World,
    /// The user identity (to mint fresh proxies).
    pub identity: Identity,
    /// The proxy minted at t=0.
    pub proxy: ProxyCredential,
    /// The CA trust root every service in this grid uses (boot hooks that
    /// rebuild services after a crash must reuse it).
    pub trust: gsi::TrustRoot,
    /// Submit machine node.
    pub submit: NodeId,
    /// The Scheduler (post [`UserCmd`]s here).
    pub scheduler: Addr,
    /// The submit machine's GASS server.
    pub gass: Addr,
    /// The mail spool.
    pub mailer: Addr,
    /// Mail node (same as submit unless changed).
    pub mail_node: NodeId,
    /// Per-site handles, in spec order.
    pub sites: Vec<SiteHandles>,
    /// The GIIS (if `with_mds`).
    pub giis: Option<Addr>,
    /// MyProxy server (if `with_myproxy`).
    pub myproxy: Option<Addr>,
    /// Personal pool pieces (if `with_personal_pool`).
    pub collector: Option<Addr>,
    /// Personal pool schedd.
    pub pool_schedd: Option<Addr>,
    /// Personal pool checkpoint server.
    pub ckpt_server: Option<Addr>,
}

fn policy_for(kind: &SiteKind) -> Box<dyn SchedPolicy> {
    match kind {
        SiteKind::Pbs | SiteKind::LoadLeveler => Box::new(EasyBackfill),
        SiteKind::Lsf => Box::new(FairShare::default()),
        SiteKind::Nqe | SiteKind::CondorPool { .. } => Box::new(Fifo),
    }
}

struct BoxedPolicy(Box<dyn SchedPolicy>);

impl SchedPolicy for BoxedPolicy {
    fn select(
        &mut self,
        now: SimTime,
        queue: &[site::policy::QueueView],
        running: &[site::policy::RunningView],
        free: u32,
    ) -> Vec<u64> {
        self.0.select(now, queue, running, free)
    }
    fn charge(&mut self, owner: &str, cpu_time: Duration) {
        self.0.charge(owner, cpu_time)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Build a complete testbed from `config`.
pub fn build(config: TestbedConfig) -> Testbed {
    let mut ca = CertificateAuthority::new("/CN=Globus CA", config.seed ^ 0xCA);
    let identity = ca.issue_identity("/CN=jane", Duration::from_days(3650));
    let proxy = identity.new_proxy(SimTime::ZERO, config.proxy_lifetime);
    let trust = ca.trust_root();
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");

    let mut wconf = Config::default().seed(config.seed);
    if config.trace {
        wconf = wconf.with_trace();
    }
    if config.lean {
        wconf = wconf.reuse_comp_ids();
    }
    if let Some(mt) = config.max_time {
        wconf = wconf.max_time(SimTime::ZERO + mt);
    }
    let shards = config.shards.max(1);
    wconf = wconf.shards(shards);
    let mut world = World::new(wconf);

    // Submit machine.
    let submit = world.add_node("submit.wisc.edu");
    let (app_image, worker_image) = if config.exe_size > 0 {
        (
            gass::FileData::bulk(config.exe_size, 1),
            gass::FileData::bulk(config.exe_size, 2),
        )
    } else {
        (
            gass::FileData::inline("ELF app"),
            gass::FileData::inline("ELF worker"),
        )
    };
    let gass = world.add_component(
        submit,
        "gass",
        GassServer::new(trust.clone())
            .preload("/home/jane/app.exe", app_image)
            .preload("/home/jane/worker.exe", worker_image),
    );
    let mailer = world.add_component(submit, "mailer", Mailer::new());

    // MDS index.
    let giis = if config.with_mds {
        let n = world.add_node("giis.grid.org");
        Some(world.add_component(n, "giis", Giis::new(trust.clone())))
    } else {
        None
    };

    // MyProxy.
    let myproxy = if config.with_myproxy {
        let n = world.add_node("myproxy.ncsa.edu");
        Some(world.add_component(n, "myproxy", MyProxyServer::new()))
    } else {
        None
    };

    // Sites. Each site's node pair goes to one shard so gatekeeper↔LRM
    // traffic stays shard-local; only WAN hops cross shards.
    let mut sites = Vec::new();
    for (site_idx, spec) in config.sites.iter().enumerate() {
        let site_shard = if shards <= 1 {
            ShardId::HOME
        } else {
            ShardId(1 + (site_idx % (shards - 1)) as u32)
        };
        let interface = world.add_node_on(&format!("gk.{}", spec.name), site_shard);
        let cluster = world.add_node_on(&format!("cluster.{}", spec.name), site_shard);
        let mut lrm = Lrm::new(&spec.name, spec.cpus, BoxedPolicy(policy_for(&spec.kind)))
            .with_arch(&spec.arch);
        if let Some(limit) = spec.wall_limit {
            lrm = lrm.with_wall_limit(limit);
        }
        if let SiteKind::CondorPool {
            churn_mean_secs,
            reclaimed_mean,
        } = spec.kind
        {
            lrm = lrm.with_churn(ChurnModel {
                interval: Dist::Exp {
                    mean: churn_mean_secs,
                },
                reclaimed: Dist::Exp {
                    mean: reclaimed_mean,
                },
                // Desktop pools breathe with the working day.
                diurnal_amplitude: 0.7,
            });
        }
        let lrm = world.add_component(cluster, "lrm", lrm);
        let mut gk = Gatekeeper::new(&spec.name, trust.clone(), gridmap.clone(), lrm);
        if config.lean {
            gk = gk.lean();
        }
        let gatekeeper = world.add_component(interface, "gatekeeper", gk);
        // Boot hook so gatekeeper machines can crash-restart in experiments.
        {
            let trust = trust.clone();
            let gm = gridmap.clone();
            let site_name = spec.name.clone();
            let lean = config.lean;
            world.set_boot(interface, move |b: &mut BootCtx<'_>| {
                let mut gk = Gatekeeper::new(&site_name, trust.clone(), gm.clone(), lrm);
                if lean {
                    gk = gk.lean();
                }
                b.add_component("gatekeeper", gk.recover(b.store(), b.node()));
            });
        }
        // GRIS: advertise the site (with its gatekeeper contact) to MDS.
        if let Some(giis) = giis {
            let ad = ClassAd::new()
                .with("Arch", spec.arch.as_str())
                .with("OpSys", "LINUX")
                .with("Gatekeeper", addr_to_attr(gatekeeper));
            world.add_component(
                cluster,
                "gris",
                Gris::new(&spec.name, ad, lrm, giis, Duration::from_mins(2)),
            );
        }
        sites.push(SiteHandles {
            name: spec.name.clone(),
            interface,
            cluster,
            gatekeeper,
            lrm,
            arch: spec.arch.clone(),
        });
    }

    // Shared-bandwidth WAN: declare the links, then route each listed
    // site's submit↔gatekeeper and submit↔cluster paths over them so
    // staging traffic to that site contends for the shared capacity.
    if let Some(wan) = &config.wan {
        let net = world.network_mut();
        let mut ids: BTreeMap<&str, LinkId> = BTreeMap::new();
        for link in &wan.links {
            ids.insert(
                link.name.as_str(),
                net.add_flow_link(&link.name, link.capacity, link.latency),
            );
        }
        for (site_idx, names) in &wan.site_routes {
            let site = sites
                .get(*site_idx)
                .unwrap_or_else(|| panic!("wan route for unknown site index {site_idx}"));
            let route: Vec<LinkId> = names
                .iter()
                .map(|n| {
                    *ids.get(n.as_str())
                        .unwrap_or_else(|| panic!("wan route references undeclared link {n}"))
                })
                .collect();
            net.set_flow_route(submit, site.interface, &route);
            net.set_flow_route(submit, site.cluster, &route);
        }
    }

    // Personal pool (with a checkpoint server, per §5: jobs checkpoint to
    // "the originating location or a local checkpoint server").
    let (collector, pool_schedd, ckpt_server) = if config.with_personal_pool {
        let collector = world.add_component(submit, "collector", Collector::new());
        let mut negotiator = Negotiator::new(collector, Duration::from_mins(1));
        if config.adaptive {
            negotiator = negotiator.with_weather(HealthPolicy::default());
        }
        world.add_component(submit, "negotiator", negotiator);
        let schedd = world.add_component(
            submit,
            "schedd",
            Schedd::new("jane@submit", vec![collector]),
        );
        let ckpt = world.add_component(submit, "ckpt-server", condor::CkptServer::new());
        (Some(collector), Some(schedd), Some(ckpt))
    } else {
        (None, None, None)
    };

    // The agent.
    let mut gm = config.gm.clone();
    gm.user = "jane".into();
    gm.mailer = Some(mailer);
    if config.lean {
        gm.lean = true;
    }
    if config.mds_broker {
        gm.giis = giis;
    }
    let mut broker: Box<dyn Broker> = if config.mds_broker {
        Box::new(MdsBroker::new(Duration::from_mins(30)))
    } else {
        Box::new(StaticListBroker::new(
            sites
                .iter()
                .map(|s| GatekeeperInfo {
                    site: s.name.clone(),
                    addr: s.gatekeeper,
                    ad: ClassAd::new(),
                })
                .collect(),
        ))
    };
    if config.adaptive {
        gm.adaptive = true;
        broker = Box::new(AdaptiveBroker::new(
            broker,
            SiteHealthTracker::new(HealthPolicy::default()),
        ));
    }
    let sched_config = SchedulerConfig {
        user: "jane".into(),
        credential: proxy.clone(),
        gass,
        pool_schedd,
        mailer: Some(mailer),
        user_addr: None,
        gm,
        email_on_termination: false,
        lean: config.lean,
    };
    let scheduler = world.add_component(submit, "scheduler", Scheduler::new(sched_config, broker));

    Testbed {
        world,
        identity,
        proxy,
        trust,
        submit,
        scheduler,
        gass,
        mailer,
        mail_node: submit,
        sites,
        giis,
        myproxy,
        collector,
        pool_schedd,
        ckpt_server,
    }
}

impl Testbed {
    /// Build a glidein factory targeting every site, `per_site` daemons
    /// each, and add it to the submit machine. Requires a personal pool.
    pub fn add_glidein_factory(&mut self, per_site: u32, lease: Duration) -> Addr {
        let collector = self.collector.expect("glideins need a personal pool");
        let sites = self
            .sites
            .iter()
            .map(|s| GlideinSite {
                site: s.name.clone(),
                gatekeeper: s.gatekeeper,
                cluster_node: s.cluster,
                target: per_site,
                lease,
                machine_ad: ClassAd::new()
                    .with("Arch", s.arch.as_str())
                    .with("OpSys", "LINUX"),
            })
            .collect();
        let mut factory = GlideinFactory::new(sites, collector, self.proxy.clone(), self.gass);
        if let Some(ckpt) = self.ckpt_server {
            factory = factory.with_ckpt_server(ckpt);
        }
        self.world
            .add_component(self.submit, "glidein-factory", factory)
    }
}

/// A scripted user console: submits specs, records every event, answers
/// nothing. Results land in stable storage on its node:
/// `console/status/<n>` per job and `console/terminal_count`.
pub struct UserConsole {
    scheduler: Addr,
    /// `(delay, spec)` submissions.
    pub submissions: Vec<(Duration, GridJobSpec)>,
    /// Send `UserCmd::RefreshProxy` at this time with this credential.
    pub refresh_at: Option<(Duration, ProxyCredential)>,
    /// Cancel the nth submission at this time.
    pub cancel_at: Option<(Duration, u64)>,
    ids: BTreeMap<u64, GridJobId>,
    history: BTreeMap<u64, Vec<String>>,
    terminal: u64,
}

const TAG_SUBMIT_BASE: u64 = 10_000;
const TAG_REFRESH: u64 = 1;
const TAG_CANCEL: u64 = 2;

impl UserConsole {
    /// A console driving `scheduler`.
    pub fn new(scheduler: Addr) -> UserConsole {
        UserConsole {
            scheduler,
            submissions: Vec::new(),
            refresh_at: None,
            cancel_at: None,
            ids: BTreeMap::new(),
            history: BTreeMap::new(),
            terminal: 0,
        }
    }

    /// Queue `spec` for submission after `delay`.
    pub fn submit_after(mut self, delay: Duration, spec: GridJobSpec) -> UserConsole {
        self.submissions.push((delay, spec));
        self
    }

    /// Queue many identical jobs at t=0.
    pub fn submit_many(mut self, n: usize, spec: GridJobSpec) -> UserConsole {
        for _ in 0..n {
            self.submissions.push((Duration::ZERO, spec.clone()));
        }
        self
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let node = ctx.node();
        let flat: Vec<(u64, Vec<String>)> =
            self.history.iter().map(|(k, v)| (*k, v.clone())).collect();
        ctx.store().put(node, "console/history", &flat);
        let term = self.terminal;
        ctx.store().put(node, "console/terminal_count", &term);
    }

    /// Read the recorded history for submission `n` from the store.
    pub fn history_of(world: &World, node: NodeId, n: u64) -> Vec<String> {
        let flat: Vec<(u64, Vec<String>)> = world
            .store()
            .get(node, "console/history")
            .unwrap_or_default();
        flat.into_iter()
            .find(|(k, _)| *k == n)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }

    /// How many submissions reached a terminal state.
    pub fn terminal_count(world: &World, node: NodeId) -> u64 {
        world
            .store()
            .get(node, "console/terminal_count")
            .unwrap_or(0)
    }
}

impl Component for UserConsole {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, (delay, _)) in self.submissions.iter().enumerate() {
            ctx.set_timer(*delay, TAG_SUBMIT_BASE + i as u64);
        }
        if let Some((at, _)) = &self.refresh_at {
            ctx.set_timer(*at, TAG_REFRESH);
        }
        if let Some((at, _)) = self.cancel_at {
            ctx.set_timer(at, TAG_CANCEL);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag >= TAG_SUBMIT_BASE {
            let i = (tag - TAG_SUBMIT_BASE) as usize;
            let spec = self.submissions[i].1.clone();
            ctx.send(self.scheduler, UserCmd::Submit { id: i as u64, spec });
        } else if tag == TAG_REFRESH {
            if let Some((_, credential)) = self.refresh_at.take() {
                ctx.send(self.scheduler, UserCmd::RefreshProxy { credential });
            }
        } else if tag == TAG_CANCEL {
            if let Some((_, n)) = self.cancel_at {
                if let Some(&job) = self.ids.get(&n) {
                    ctx.send(self.scheduler, UserCmd::Cancel { job });
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Some(event) = msg.downcast_ref::<UserEvent>() else {
            return;
        };
        match event {
            UserEvent::Submitted { id, job } => {
                self.ids.insert(*id, *job);
                self.history
                    .entry(*id)
                    .or_default()
                    .push("Submitted".into());
                self.persist(ctx);
            }
            UserEvent::Status { job, status, .. } => {
                let Some((&id, _)) = self.ids.iter().find(|(_, j)| **j == *job) else {
                    return;
                };
                let entry = self.history.entry(id).or_default();
                let text = match status {
                    JobStatus::Held(r) => format!("Held({r})"),
                    JobStatus::Failed(r) => format!("Failed({r})"),
                    s => format!("{s:?}"),
                };
                // Terminal counting: only the first terminal event per job.
                if status.is_terminal()
                    && !entry.iter().any(|e| {
                        e.starts_with("Done") || e.starts_with("Failed") || e.starts_with("Removed")
                    })
                {
                    self.terminal += 1;
                }
                self.history.entry(id).or_default().push(text);
                self.persist(ctx);
            }
            UserEvent::Log { .. } => {}
        }
    }
}
